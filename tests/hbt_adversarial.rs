//! Adversarial HBT corpus: every byte of an HBT stream is untrusted, so
//! every reader must return a typed error (with a byte offset) or the
//! identical report — never panic, never allocate unbounded memory.
//!
//! Three families of hostile input:
//!
//! * seeded random byte mutations of a real recorded trace, checked for
//!   streaming-reader vs slice-reader parity (same records or the same
//!   error string);
//! * crafted records — giant varint lengths, lying lengths, varint
//!   overflow, oversized manifest counts — against all three readers;
//! * section-boundary attacks — truncation at a `RUN` boundary with a
//!   forged end marker, spliced manifests from a different recording,
//!   records appended after the manifest — caught by the manifest check.

use home::prelude::*;
use home::stream::{
    decode_sections, scan_layout, HbtMmapReader, HbtReader, HbtRecord, HbtSliceReader, HbtWriter,
    IndexEntry, ManifestCheck, HBT_MAGIC, HBT_V2, HBT_VERSION, MAX_RECORD_LEN,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::io::Cursor;
use std::sync::Arc;

const FIGURE2: &str = "programs/figure2.hmp";

/// Record `program` under `seeds` exactly like `home record`: one `RUN`
/// record per seed, the instrumented events, then the run's incidents.
fn record_bytes(path: &str, seeds: &[u64]) -> Vec<u8> {
    record_into(
        HbtWriter::new(Vec::new()).expect("header write"),
        path,
        seeds,
    )
}

/// Same recording through the v2 path (`home record --compress`):
/// LZ-compressed frames plus the trailing seek index.
fn record_bytes_v2(path: &str, seeds: &[u64]) -> Vec<u8> {
    record_into(
        HbtWriter::new_compressed(Vec::new()).expect("header write"),
        path,
        seeds,
    )
}

fn record_into(mut writer: HbtWriter<Vec<u8>>, path: &str, seeds: &[u64]) -> Vec<u8> {
    let source = std::fs::read_to_string(path).expect("test program exists");
    let program = parse(&source).expect("test program parses");
    let checklist = Arc::new(analyze(&program).checklist.clone());
    for &seed in seeds {
        writer.begin_run(seed).expect("run record");
        let mut cfg = RunConfig::test(2, seed)
            .with_instrumentation(Instrumentation::home())
            .with_checklist(Arc::clone(&checklist));
        cfg.threads_per_proc = 2;
        cfg.sched.policy = SchedPolicy::Random;
        let result = run(&program, &cfg);
        for e in result.trace.events() {
            writer.write_event(e).expect("event record");
        }
        for i in &result.mpi_errors {
            writer
                .write_incident(&home::stream::TraceIncident {
                    rank: i.rank,
                    line: i.line,
                    call: i.call.clone(),
                    error: i.error.clone(),
                })
                .expect("incident record");
        }
    }
    writer.finish().expect("trailer write")
}

fn header() -> Vec<u8> {
    let mut out = HBT_MAGIC.to_vec();
    out.push(HBT_VERSION);
    out
}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

/// Drain the streaming reader, running the manifest check like
/// `decode_sections` does. Ok(records) or the first error's message.
fn stream_read(bytes: &[u8]) -> Result<Vec<HbtRecord>, String> {
    let mut reader = HbtReader::new(Cursor::new(bytes)).map_err(|e| e.to_string())?;
    let mut check = ManifestCheck::new();
    let mut records = Vec::new();
    loop {
        match reader.next_record() {
            Ok(Some(record)) => {
                check
                    .on_record(&record, reader.offset())
                    .map_err(|e| e.to_string())?;
                records.push(record);
            }
            Ok(None) => break,
            Err(e) => return Err(e.to_string()),
        }
    }
    check.finish(reader.offset()).map_err(|e| e.to_string())?;
    Ok(records)
}

/// Same drive over the zero-copy slice reader.
fn slice_read(bytes: &[u8]) -> Result<Vec<HbtRecord>, String> {
    let mut reader = HbtSliceReader::new(bytes).map_err(|e| e.to_string())?;
    let mut check = ManifestCheck::new();
    let mut records = Vec::new();
    loop {
        match reader.next_record() {
            Ok(Some(record)) => {
                check
                    .on_record(&record, reader.offset())
                    .map_err(|e| e.to_string())?;
                records.push(record);
            }
            Ok(None) => break,
            Err(e) => return Err(e.to_string()),
        }
    }
    check.finish(reader.offset()).map_err(|e| e.to_string())?;
    Ok(records)
}

/// Byte offsets at which each record of a well-formed stream begins,
/// plus each record. Walked with the streaming reader.
fn record_starts(bytes: &[u8]) -> Vec<(u64, HbtRecord)> {
    let mut reader = HbtReader::new(Cursor::new(bytes)).expect("valid header");
    let mut out = Vec::new();
    loop {
        let start = reader.offset();
        match reader.next_record().expect("valid record") {
            Some(record) => out.push((start, record)),
            None => break,
        }
    }
    out
}

#[test]
fn random_byte_mutations_never_panic_and_readers_agree() {
    let base = record_bytes(FIGURE2, &[1, 2]);
    assert!(base.len() > 64, "recording is non-trivial");
    for case in 0u64..200 {
        let mut rng = ChaCha8Rng::seed_from_u64(0xADE5_0000 + case);
        let mut bytes = base.clone();
        if rng.gen_bool(0.25) {
            // Truncate somewhere (including inside the header).
            let cut = rng.gen_range(0u64..bytes.len() as u64) as usize;
            bytes.truncate(cut);
        } else {
            let flips = 1 + rng.gen_range(0u64..4) as usize;
            for _ in 0..flips {
                let at = rng.gen_range(0u64..bytes.len() as u64) as usize;
                bytes[at] = rng.gen_range(0u64..256) as u8;
            }
        }

        let streamed = stream_read(&bytes);
        let sliced = slice_read(&bytes);
        assert_eq!(
            streamed, sliced,
            "case {case}: streaming and slice readers disagree"
        );
        if let Err(msg) = &streamed {
            assert!(
                msg.contains("byte"),
                "case {case}: error lacks a byte offset: {msg}"
            );
        }

        // The full decode + analyze path must never panic either: a typed
        // error or a verdict, nothing else.
        let outcome = std::panic::catch_unwind(|| {
            decode_sections(&bytes).and_then(|s| home::serve::analyze_sections(&s))
        });
        assert!(outcome.is_ok(), "case {case}: decode/analyze panicked");
    }
}

#[test]
fn giant_record_length_is_a_typed_error_on_every_reader() {
    let mut bytes = header();
    put_varint(&mut bytes, MAX_RECORD_LEN + 1);

    for result in [stream_read(&bytes), slice_read(&bytes)] {
        let msg = result.expect_err("oversized length must be rejected");
        assert!(
            msg.contains("exceeds limit") && msg.contains("byte"),
            "unexpected error: {msg}"
        );
    }
    let msg = decode_sections(&bytes)
        .expect_err("decode_sections must reject it")
        .to_string();
    assert!(msg.contains("exceeds limit"), "unexpected error: {msg}");

    // Same through the mmap reader (a real file, so the mapping path runs).
    let dir = tmp_dir("giant_varint");
    let path = dir.join("giant.hbt");
    std::fs::write(&path, &bytes).expect("write trace");
    let mapped = HbtMmapReader::open(&path).expect("mmap open");
    let msg = mapped
        .sections()
        .expect_err("mmap reader must reject it")
        .to_string();
    assert!(msg.contains("exceeds limit"), "unexpected error: {msg}");
}

#[test]
fn lying_record_length_truncates_without_oom() {
    // The record claims ~256 MiB but only 64 bytes follow. The streaming
    // reader must report truncation after at most one bounded chunk — not
    // allocate the full claimed length up front.
    let mut bytes = header();
    put_varint(&mut bytes, MAX_RECORD_LEN - 1);
    bytes.extend_from_slice(&[2u8; 64]);

    for result in [stream_read(&bytes), slice_read(&bytes)] {
        let msg = result.expect_err("lying length must truncate");
        assert!(
            msg.contains("truncated") && msg.contains("byte"),
            "unexpected error: {msg}"
        );
    }
}

#[test]
fn varint_overflow_is_a_typed_error() {
    let mut bytes = header();
    bytes.extend_from_slice(&[0xFF; 10]);
    for result in [stream_read(&bytes), slice_read(&bytes)] {
        let msg = result.expect_err("varint overflow must be rejected");
        assert!(
            msg.contains("varint") && msg.contains("byte"),
            "unexpected error: {msg}"
        );
    }
}

#[test]
fn giant_manifest_count_is_bounded_by_record_size() {
    // A manifest record whose declared section count dwarfs its payload
    // must be rejected before any allocation sized from it.
    let mut payload = vec![4u8]; // REC_MANIFEST
    put_varint(&mut payload, u64::MAX >> 2);
    let mut bytes = header();
    put_varint(&mut bytes, payload.len() as u64);
    bytes.extend_from_slice(&payload);
    bytes.push(0);

    for result in [stream_read(&bytes), slice_read(&bytes)] {
        let msg = result.expect_err("oversized manifest count must be rejected");
        assert!(
            msg.contains("manifest section count") && msg.contains("exceeds record size"),
            "unexpected error: {msg}"
        );
    }
}

#[test]
fn truncation_at_a_section_boundary_is_detected() {
    // Cut a two-run recording right where the second RUN record begins and
    // forge a clean end marker. Without the manifest this parsed as a
    // one-run trace; the manifest check must now reject it.
    let base = record_bytes(FIGURE2, &[1, 2]);
    let starts = record_starts(&base);
    let second_run = starts
        .iter()
        .filter(|(_, r)| matches!(r, HbtRecord::Run { .. }))
        .nth(1)
        .map(|(at, _)| *at)
        .expect("two RUN records");

    let mut forged = base[..second_run as usize].to_vec();
    forged.push(0); // forged end marker
    for result in [stream_read(&forged), slice_read(&forged)] {
        let msg = result.expect_err("boundary truncation must be rejected");
        assert!(
            msg.contains("ends without a section manifest"),
            "unexpected error: {msg}"
        );
    }
    let msg = decode_sections(&forged)
        .expect_err("decode_sections must reject it")
        .to_string();
    assert!(msg.contains("ends without a section manifest"));
}

#[test]
fn spliced_manifest_with_wrong_section_count_is_detected() {
    // Body of a one-run recording + manifest of a two-run recording.
    let one = record_bytes(FIGURE2, &[1]);
    let two = record_bytes(FIGURE2, &[1, 2]);
    let manifest_at = |bytes: &[u8]| {
        record_starts(bytes)
            .iter()
            .find(|(_, r)| matches!(r, HbtRecord::Manifest { .. }))
            .map(|(at, _)| *at)
            .expect("recording ends with a manifest") as usize
    };
    let mut spliced = one[..manifest_at(&one)].to_vec();
    spliced.extend_from_slice(&two[manifest_at(&two)..]);

    for result in [stream_read(&spliced), slice_read(&spliced)] {
        let msg = result.expect_err("section-count mismatch must be rejected");
        assert!(
            msg.contains("declares 2 section(s)") && msg.contains("contains 1"),
            "unexpected error: {msg}"
        );
    }
}

#[test]
fn spliced_manifest_with_wrong_seed_is_detected() {
    // Same section count, different seed list: run seed 2's body under a
    // manifest recorded for seed 9.
    let real = record_bytes(FIGURE2, &[2]);
    let decoy = record_bytes(FIGURE2, &[9]);
    let manifest_at = |bytes: &[u8]| {
        record_starts(bytes)
            .iter()
            .find(|(_, r)| matches!(r, HbtRecord::Manifest { .. }))
            .map(|(at, _)| *at)
            .expect("recording ends with a manifest") as usize
    };
    let mut spliced = real[..manifest_at(&real)].to_vec();
    spliced.extend_from_slice(&decoy[manifest_at(&decoy)..]);

    for result in [stream_read(&spliced), slice_read(&spliced)] {
        let msg = result.expect_err("seed mismatch must be rejected");
        assert!(
            msg.contains("seed list disagrees"),
            "unexpected error: {msg}"
        );
    }
}

#[test]
fn records_after_the_manifest_are_rejected() {
    // Append a copy of the first event record after the manifest and
    // re-terminate: the manifest must be the final record.
    let base = record_bytes(FIGURE2, &[1]);
    let starts = record_starts(&base);
    let (event_start, _) = starts
        .iter()
        .find(|(_, r)| matches!(r, HbtRecord::Event(_)))
        .expect("recording has events");
    let event_end = starts
        .iter()
        .map(|(at, _)| *at)
        .chain(std::iter::once(base.len() as u64 - 1))
        .find(|&at| at > *event_start)
        .expect("next record start");

    let mut forged = base[..base.len() - 1].to_vec(); // drop end marker
    forged.extend_from_slice(&base[*event_start as usize..event_end as usize]);
    forged.push(0);

    for result in [stream_read(&forged), slice_read(&forged)] {
        let msg = result.expect_err("record after manifest must be rejected");
        assert!(
            msg.contains("record after the section manifest"),
            "unexpected error: {msg}"
        );
    }
}

#[test]
fn mutated_traces_share_one_verdict_across_offline_readers() {
    // For mutations that still decode, the slice path and the mmap path
    // must produce the same sections and the same analyze verdict.
    let base = record_bytes(FIGURE2, &[3, 4]);
    let dir = tmp_dir("mutation_parity");
    for case in 0u64..40 {
        let mut rng = ChaCha8Rng::seed_from_u64(0x9A17_0000 + case);
        let mut bytes = base.clone();
        let at = rng.gen_range(0u64..bytes.len() as u64) as usize;
        bytes[at] = rng.gen_range(0u64..256) as u8;

        let from_slice = decode_sections(&bytes);
        let path = dir.join(format!("case{case}.hbt"));
        std::fs::write(&path, &bytes).expect("write mutated trace");
        let from_mmap = HbtMmapReader::open(&path).and_then(|m| m.sections());
        match (from_slice, from_mmap) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.len(), b.len(), "case {case}: section counts differ");
                let va = home::serve::analyze_sections(&a);
                let vb = home::serve::analyze_sections(&b);
                assert_eq!(
                    format!("{va:?}"),
                    format!("{vb:?}"),
                    "case {case}: verdicts differ"
                );
            }
            (Err(a), Err(b)) => {
                assert_eq!(a.to_string(), b.to_string(), "case {case}: errors differ");
            }
            (a, b) => panic!(
                "case {case}: readers disagree on validity: slice={:?} mmap={:?}",
                a.is_ok(),
                b.is_ok()
            ),
        }
    }
}

// ---------------------------------------------------------------------------
// v2 family: compressed frames and the seek index are attacker-controlled too
// ---------------------------------------------------------------------------

/// Physical records of a well-formed stream: (record start, kind byte,
/// payload range). Unlike [`record_starts`] this walks the raw framing, so
/// v2 `FRAME`/`INDEX` records appear as themselves rather than as the
/// logical records they inflate into.
fn physical_records(bytes: &[u8]) -> Vec<(usize, u8, std::ops::Range<usize>)> {
    let mut pos = 5; // magic + version
    let mut out = Vec::new();
    loop {
        let start = pos;
        let mut len: u64 = 0;
        let mut shift = 0u32;
        loop {
            let b = bytes[pos];
            pos += 1;
            len |= u64::from(b & 0x7f) << shift;
            shift += 7;
            if b & 0x80 == 0 {
                break;
            }
        }
        if len == 0 {
            return out;
        }
        let payload = pos..pos + len as usize;
        out.push((start, bytes[payload.start], payload.clone()));
        pos = payload.end;
    }
}

/// Encode a seek-index record (length prefix + payload) from entries, the
/// writer's wire format re-implemented so tests can forge variants.
fn encode_index_record(entries: &[IndexEntry]) -> Vec<u8> {
    const REC_INDEX: u8 = 6;
    const FRAME_HAS_SEED: u8 = 1;
    const FRAME_CONTINUATION: u8 = 4;
    let mut payload = vec![REC_INDEX];
    put_varint(&mut payload, entries.len() as u64);
    for e in entries {
        let mut flags = 0u8;
        if e.seed.is_some() {
            flags |= FRAME_HAS_SEED;
        }
        if e.continuation {
            flags |= FRAME_CONTINUATION;
        }
        payload.push(flags);
        if let Some(s) = e.seed {
            put_varint(&mut payload, s);
        }
        put_varint(&mut payload, e.offset);
        put_varint(&mut payload, e.events);
        put_varint(&mut payload, e.incidents);
        put_varint(&mut payload, e.raw_len);
    }
    let mut record = Vec::with_capacity(payload.len() + 2);
    put_varint(&mut record, payload.len() as u64);
    record.extend_from_slice(&payload);
    record
}

/// Splice a forged seek index into a real v2 recording, keeping the
/// manifest and end marker that follow the genuine index.
fn with_forged_index(base: &[u8], entries: &[IndexEntry]) -> Vec<u8> {
    let records = physical_records(base);
    let (index_start, _, _) = *records
        .iter()
        .find(|(_, kind, _)| *kind == 6)
        .expect("v2 recording carries a seek index");
    let (tail_start, _, _) = *records
        .iter()
        .find(|(start, _, _)| *start > index_start)
        .expect("manifest follows the index");
    let mut forged = base[..index_start].to_vec();
    forged.extend_from_slice(&encode_index_record(entries));
    forged.extend_from_slice(&base[tail_start..]);
    forged
}

/// Seek-index entries of a v2 recording, via the validated layout scan.
fn index_entries(bytes: &[u8]) -> Vec<IndexEntry> {
    scan_layout(bytes)
        .expect("recording is well-formed")
        .expect("recording is v2 with frames")
        .frames
        .iter()
        .map(|f| f.entry)
        .collect()
}

#[test]
fn v2_random_mutations_never_panic_and_readers_agree() {
    let base = record_bytes_v2(FIGURE2, &[1, 2]);
    assert!(base.len() > 64, "v2 recording is non-trivial");
    for case in 0u64..200 {
        let mut rng = ChaCha8Rng::seed_from_u64(0xB2AD_0000 + case);
        let mut bytes = base.clone();
        if rng.gen_bool(0.25) {
            let cut = rng.gen_range(0u64..bytes.len() as u64) as usize;
            bytes.truncate(cut);
        } else {
            let flips = 1 + rng.gen_range(0u64..4) as usize;
            for _ in 0..flips {
                let at = rng.gen_range(0u64..bytes.len() as u64) as usize;
                bytes[at] = rng.gen_range(0u64..256) as u8;
            }
        }

        let streamed = stream_read(&bytes);
        let sliced = slice_read(&bytes);
        assert_eq!(
            streamed, sliced,
            "case {case}: streaming and slice readers disagree on a v2 mutation"
        );
        if let Err(msg) = &streamed {
            assert!(
                msg.contains("byte"),
                "case {case}: error lacks a byte offset: {msg}"
            );
        }

        // The frame-parallel decoder must reach the same conclusion as the
        // serial one — same sections, or a typed error on both sides.
        let outcome = std::panic::catch_unwind(|| {
            let serial = decode_sections(&bytes);
            let parallel = home::core::decode_trace(&bytes, 4);
            match (serial, parallel) {
                (Ok(a), Ok(b)) => assert_eq!(
                    format!("{a:?}"),
                    format!("{b:?}"),
                    "case {case}: parallel decode diverges from serial"
                ),
                (Err(a), Err(b)) => {
                    for msg in [a.to_string(), b.to_string()] {
                        assert!(
                            msg.contains("byte"),
                            "case {case}: error lacks a byte offset: {msg}"
                        );
                    }
                }
                (a, b) => panic!(
                    "case {case}: decoders disagree on validity: serial={:?} parallel={:?}",
                    a.is_ok(),
                    b.is_ok()
                ),
            }
        });
        assert!(outcome.is_ok(), "case {case}: v2 decode panicked");
    }
}

#[test]
fn v2_truncation_at_many_byte_positions_is_typed() {
    let base = record_bytes_v2(FIGURE2, &[1]);
    // Every cut in the header and trailer neighborhoods, strided through
    // the frame bodies (each body byte behaves like its neighbors).
    let cuts: Vec<usize> = (0..base.len().min(64))
        .chain((64..base.len()).step_by(13))
        .chain(base.len().saturating_sub(200)..base.len())
        .collect();
    for cut in cuts {
        let bytes = &base[..cut];
        let streamed = stream_read(bytes);
        let sliced = slice_read(bytes);
        assert_eq!(streamed, sliced, "cut {cut}: readers disagree");
        let msg = streamed.expect_err("every truncation must be an error");
        assert!(msg.contains("byte"), "cut {cut}: no byte offset: {msg}");
        let parallel = home::core::decode_trace(bytes, 4)
            .map(|s| s.len())
            .map_err(|e| e.to_string());
        assert!(parallel.is_err(), "cut {cut}: parallel decoder accepted it");
    }
}

#[test]
fn v2_forged_index_offset_is_rejected() {
    let base = record_bytes_v2(FIGURE2, &[1, 2]);
    let mut entries = index_entries(&base);
    assert!(entries.len() >= 2, "two seeds record at least two frames");
    entries[1].offset += 1;
    let forged = with_forged_index(&base, &entries);

    for result in [stream_read(&forged), slice_read(&forged)] {
        let msg = result.expect_err("lying index offset must be rejected");
        assert!(
            msg.contains("disagrees with the stream") && msg.contains("byte"),
            "unexpected error: {msg}"
        );
    }
    let msg = home::core::decode_trace(&forged, 4)
        .expect_err("parallel decode must reject a lying offset before decompressing")
        .to_string();
    assert!(
        msg.contains("disagrees with the stream") && msg.contains("byte"),
        "unexpected error: {msg}"
    );
}

#[test]
fn v2_forged_index_count_and_counters_are_rejected() {
    let base = record_bytes_v2(FIGURE2, &[1, 2]);
    let entries = index_entries(&base);

    // Dropped entry: the index under-declares the frame population.
    let dropped = with_forged_index(&base, &entries[..entries.len() - 1]);
    // Inflated event counter: per-frame accounting must match.
    let mut inflated = entries.clone();
    inflated[0].events += 1;
    let inflated = with_forged_index(&base, &inflated);

    for (what, forged, needle) in [
        ("dropped entry", dropped, "seek index declares"),
        ("inflated events", inflated, "disagrees with the stream"),
    ] {
        for result in [stream_read(&forged), slice_read(&forged)] {
            match result {
                Ok(_) => panic!("{what}: forged index must be rejected"),
                Err(msg) => assert!(
                    msg.contains(needle) && msg.contains("byte"),
                    "{what}: unexpected error: {msg}"
                ),
            }
        }
    }
}

#[test]
fn v2_frame_raw_len_lie_is_rejected() {
    // Hand-built v2 stream: one uncompressed frame whose header declares
    // more raw bytes than it stores.
    let mut payload = vec![5u8, 1u8]; // REC_FRAME, flags = HAS_SEED
    put_varint(&mut payload, 7); // seed
    put_varint(&mut payload, 0); // events
    put_varint(&mut payload, 0); // incidents
    put_varint(&mut payload, 99); // raw_len lie: nothing follows
    let mut bytes = HBT_MAGIC.to_vec();
    bytes.push(HBT_V2);
    put_varint(&mut bytes, payload.len() as u64);
    bytes.extend_from_slice(&payload);
    bytes.push(0);

    for result in [stream_read(&bytes), slice_read(&bytes)] {
        let msg = result.expect_err("raw-length lie must be rejected");
        assert!(
            msg.contains("declares 99 uncompressed byte(s) but stores 0") && msg.contains("byte"),
            "unexpected error: {msg}"
        );
    }
}

/// Hand-built v2 stream: one empty *anonymous* frame (no seed flag), a
/// matching one-entry seek index, and a manifest declaring `declared`
/// sections — each declared section anonymous. The frame walk counts the
/// frame as a section while record inflation produces none, so no declared
/// count can satisfy both; what matters is that the contradiction is a
/// typed error at every fan-out width, never an accept-at-one-width skew.
fn empty_anonymous_frame_stream(declared: u64) -> Vec<u8> {
    let mut bytes = HBT_MAGIC.to_vec();
    bytes.push(HBT_V2);
    // frame: kind 5, flags 0 (anonymous), events 0, incidents 0, raw_len 0
    let frame = [5u8, 0, 0, 0, 0];
    put_varint(&mut bytes, frame.len() as u64);
    bytes.extend_from_slice(&frame);
    bytes.extend_from_slice(&encode_index_record(&[IndexEntry {
        offset: 5,
        seed: None,
        continuation: false,
        events: 0,
        incidents: 0,
        raw_len: 0,
    }]));
    let mut manifest = vec![4u8]; // REC_MANIFEST
    put_varint(&mut manifest, declared);
    // one flag byte per declared section: 0 = anonymous, no seed
    manifest.extend(std::iter::repeat_n(0u8, declared as usize));
    put_varint(&mut bytes, manifest.len() as u64);
    bytes.extend_from_slice(&manifest);
    bytes.push(0);
    bytes
}

/// `decode_trace` verdict (sections or error string) at one width.
fn decode_at(bytes: &[u8], jobs: usize) -> Result<String, String> {
    home::core::decode_trace(bytes, jobs)
        .map(|s| format!("{s:?}"))
        .map_err(|e| e.to_string())
}

#[test]
fn v2_empty_anonymous_frame_under_empty_manifest_is_jobs_invariant() {
    // The frame walk sees one (anonymous) section, the manifest declares
    // zero: rejected with the same byte-anchored diagnostic at every width.
    let bytes = empty_anonymous_frame_stream(0);
    let verdict = decode_at(&bytes, 1);
    assert_eq!(
        verdict,
        decode_at(&bytes, 4),
        "verdict diverges across jobs"
    );
    let msg = verdict.expect_err("declared/contained mismatch must be rejected");
    assert!(
        msg.contains("declares 0 section(s)") && msg.contains("byte"),
        "unexpected error: {msg}"
    );
}

#[test]
fn v2_manifest_declared_anonymous_section_is_jobs_invariant() {
    // The mirror image: the manifest declares one anonymous section but the
    // empty frame inflates to no records at all.
    let bytes = empty_anonymous_frame_stream(1);
    let verdict = decode_at(&bytes, 1);
    assert_eq!(
        verdict,
        decode_at(&bytes, 4),
        "verdict diverges across jobs"
    );
    let msg = verdict.expect_err("declared/contained mismatch must be rejected");
    assert!(
        msg.contains("declares 1 section(s)") && msg.contains("byte"),
        "unexpected error: {msg}"
    );
}

#[test]
fn v2_corrupt_compressed_frame_is_typed_on_every_path() {
    let base = record_bytes_v2(FIGURE2, &[1, 2]);
    let layout = scan_layout(&base).expect("valid").expect("v2 layout");
    // Flip a byte in the middle of the first frame's stored body (past the
    // header fields, so the LZ payload itself is what breaks).
    let entry = layout.frames[0].entry;
    let records = physical_records(&base);
    let (_, _, payload) = records
        .iter()
        .find(|(start, kind, _)| *start as u64 == entry.offset && *kind == 5)
        .expect("first frame record");
    let mut bytes = base.clone();
    let mid = payload.start + (payload.len() / 2).max(16);
    bytes[mid] ^= 0x5A;

    let streamed = stream_read(&bytes);
    let sliced = slice_read(&bytes);
    assert_eq!(streamed, sliced, "readers disagree on the corrupt frame");
    // A mid-body flip can land in an event payload and still parse; what is
    // forbidden is a panic or a silent readers/paths divergence.
    if let Err(msg) = &streamed {
        assert!(msg.contains("byte"), "no byte offset: {msg}");
    }
    let serial = decode_sections(&bytes).map(|s| format!("{s:?}"));
    let parallel = home::core::decode_trace(&bytes, 4).map(|s| format!("{s:?}"));
    match (serial, parallel) {
        (Ok(a), Ok(b)) => assert_eq!(a, b, "paths diverge on the corrupt frame"),
        (Err(a), Err(b)) => {
            assert!(a.to_string().contains("byte"), "{a}");
            assert!(b.to_string().contains("byte"), "{b}");
        }
        (a, b) => panic!(
            "paths disagree on validity: serial={:?} parallel={:?}",
            a.is_ok(),
            b.is_ok()
        ),
    }
}

#[test]
fn version_byte_confusion_is_handled_on_both_sides() {
    // A v2 body labeled v1: the first FRAME record is an unknown kind in a
    // version-1 stream — typed error, not a misparse.
    let mut v2_as_v1 = record_bytes_v2(FIGURE2, &[1]);
    v2_as_v1[4] = HBT_VERSION;
    for result in [stream_read(&v2_as_v1), slice_read(&v2_as_v1)] {
        let msg = result.expect_err("v2 kinds under a v1 label must be rejected");
        assert!(
            msg.contains("HBT v2 record kind") && msg.contains("byte"),
            "unexpected error: {msg}"
        );
    }

    // A v1 body labeled v2: plain records are legal in a v2 stream (the
    // format is a superset), so this decodes to the identical sections.
    let v1 = record_bytes(FIGURE2, &[1]);
    let mut v1_as_v2 = v1.clone();
    v1_as_v2[4] = HBT_V2;
    let original = decode_sections(&v1).expect("v1 recording decodes");
    let relabeled = decode_sections(&v1_as_v2).expect("plain records are legal v2");
    assert_eq!(
        format!("{original:?}"),
        format!("{relabeled:?}"),
        "relabeling a plain stream must not change its sections"
    );
    assert!(
        scan_layout(&v1_as_v2).expect("still well-formed").is_none(),
        "a frameless stream has no parallel layout"
    );
}

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    std::fs::create_dir_all(&dir).expect("create tmp dir");
    dir
}
