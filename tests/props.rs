//! Randomized property tests over the core data structures and the language
//! front-end. Uses a seeded in-repo ChaCha generator (the crates registry is
//! unreachable, so proptest is unavailable); every case is deterministic and
//! the failing seed is part of the assertion message.

use home::ir::build as b;
use home::ir::{parse, print_program, BinOp, Expr, IrReduceOp, MpiStmt, Stmt};
use home::trace::{LockId, LockSet, VectorClock};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn rng_for(case: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(0xC0DE_0000 + case)
}

// ---- vector clock laws -----------------------------------------------------

fn gen_vc(rng: &mut ChaCha8Rng) -> VectorClock {
    let mut vc = VectorClock::new();
    for i in 0..rng.gen_range(0usize..6) {
        vc.set(i, rng.gen_range(0u64..20));
    }
    vc
}

#[test]
fn vc_join_is_commutative() {
    for case in 0..256 {
        let mut rng = rng_for(case);
        let (a, c) = (gen_vc(&mut rng), gen_vc(&mut rng));
        let mut ac = a.clone();
        ac.join(&c);
        let mut ca = c.clone();
        ca.join(&a);
        assert_eq!(
            ac.partial_cmp_vc(&ca),
            Some(std::cmp::Ordering::Equal),
            "case {case}: {a:?} ⊔ {c:?}"
        );
    }
}

#[test]
fn vc_join_is_upper_bound() {
    for case in 0..256 {
        let mut rng = rng_for(case);
        let (a, c) = (gen_vc(&mut rng), gen_vc(&mut rng));
        let mut j = a.clone();
        j.join(&c);
        assert!(a.leq(&j) && c.leq(&j), "case {case}: {a:?} ⊔ {c:?} = {j:?}");
    }
}

#[test]
fn vc_join_is_idempotent() {
    for case in 0..256 {
        let mut rng = rng_for(case);
        let a = gen_vc(&mut rng);
        let mut j = a.clone();
        j.join(&a);
        assert!(j.leq(&a) && a.leq(&j), "case {case}: {a:?}");
    }
}

#[test]
fn vc_leq_is_a_partial_order() {
    for case in 0..256 {
        let mut rng = rng_for(case);
        let (a, c, d) = (gen_vc(&mut rng), gen_vc(&mut rng), gen_vc(&mut rng));
        // Reflexive.
        assert!(a.leq(&a), "case {case}");
        // Antisymmetric (up to equality of components).
        if a.leq(&c) && c.leq(&a) {
            assert_eq!(
                a.partial_cmp_vc(&c),
                Some(std::cmp::Ordering::Equal),
                "case {case}"
            );
        }
        // Transitive.
        if a.leq(&c) && c.leq(&d) {
            assert!(a.leq(&d), "case {case}");
        }
    }
}

#[test]
fn vc_tick_strictly_increases() {
    for case in 0..256 {
        let mut rng = rng_for(case);
        let before = gen_vc(&mut rng);
        let slot = rng.gen_range(0usize..8);
        let mut after = before.clone();
        after.tick(slot);
        assert!(before.happens_before(&after), "case {case}: slot {slot}");
    }
}

#[test]
fn vc_concurrent_is_symmetric_and_irreflexive() {
    for case in 0..256 {
        let mut rng = rng_for(case);
        let (a, c) = (gen_vc(&mut rng), gen_vc(&mut rng));
        assert_eq!(a.concurrent_with(&c), c.concurrent_with(&a), "case {case}");
        assert!(!a.concurrent_with(&a), "case {case}");
    }
}

// ---- lockset laws ----------------------------------------------------------

fn gen_lockset(rng: &mut ChaCha8Rng) -> LockSet {
    let mut set = LockSet::new();
    for _ in 0..rng.gen_range(0usize..6) {
        set.insert(LockId(rng.gen_range(0u32..12)));
    }
    set
}

#[test]
fn lockset_intersect_commutes() {
    for case in 0..256 {
        let mut rng = rng_for(case);
        let (a, c) = (gen_lockset(&mut rng), gen_lockset(&mut rng));
        assert_eq!(a.intersect(&c), c.intersect(&a), "case {case}");
    }
}

#[test]
fn lockset_intersection_is_subset() {
    for case in 0..256 {
        let mut rng = rng_for(case);
        let (a, c) = (gen_lockset(&mut rng), gen_lockset(&mut rng));
        let i = a.intersect(&c);
        for l in i.iter() {
            assert!(a.contains(l) && c.contains(l), "case {case}: {l:?}");
        }
        assert_eq!(i.is_empty(), a.disjoint(&c), "case {case}");
    }
}

#[test]
fn lockset_insert_remove_roundtrip() {
    for case in 0..256 {
        let mut rng = rng_for(case);
        let a = gen_lockset(&mut rng);
        let lock = LockId(rng.gen_range(0u32..12));
        let had = a.contains(lock);
        let mut m = a.clone();
        m.insert(lock);
        assert!(m.contains(lock), "case {case}");
        m.remove(lock);
        assert!(!m.contains(lock), "case {case}");
        if !had {
            assert_eq!(m, a, "case {case}");
        }
    }
}

// ---- epoch-adaptive clock ↔ dense reference equivalence ---------------------
//
// `VectorClock` keeps single-writer clocks as a `(slot, value)` epoch and
// promotes to a dense vector only when a second component appears. These
// tests drive the adaptive clock and a dense-only reference model through
// identical random operation sequences and demand observational equality,
// so no epoch fast path can drift from the dense semantics.

/// Dense-only reference model: a plain `Vec<u64>`, no representation tricks.
#[derive(Clone, Debug, Default)]
struct DenseRef {
    entries: Vec<u64>,
}

impl DenseRef {
    fn get(&self, slot: usize) -> u64 {
        self.entries.get(slot).copied().unwrap_or(0)
    }

    fn set(&mut self, slot: usize, value: u64) {
        if self.entries.len() <= slot {
            self.entries.resize(slot + 1, 0);
        }
        self.entries[slot] = value;
    }

    fn tick(&mut self, slot: usize) -> u64 {
        let v = self.get(slot) + 1;
        self.set(slot, v);
        v
    }

    fn join(&mut self, other: &DenseRef) {
        for (i, &v) in other.entries.iter().enumerate() {
            if v > self.get(i) {
                self.set(i, v);
            }
        }
    }

    fn leq(&self, other: &DenseRef) -> bool {
        self.entries
            .iter()
            .enumerate()
            .all(|(i, &v)| v <= other.get(i))
    }
}

/// Apply one random mutation to both representations. Few operations per
/// clock keeps a healthy share of cases in the epoch (≤1 nonzero slot)
/// regime, where the fast paths live.
fn mutate_both(rng: &mut ChaCha8Rng, vc: &mut VectorClock, dense: &mut DenseRef) {
    match rng.gen_range(0u32..4) {
        0 => {
            let (slot, v) = (rng.gen_range(0usize..6), rng.gen_range(0u64..20));
            vc.set(slot, v);
            dense.set(slot, v);
        }
        1 => {
            let slot = rng.gen_range(0usize..6);
            assert_eq!(vc.tick(slot), dense.tick(slot), "tick return");
        }
        2 => {
            // Join a random singleton (the common cross-clock flow shape).
            let (slot, v) = (rng.gen_range(0usize..6), rng.gen_range(0u64..20));
            let mut other = VectorClock::new();
            other.set(slot, v);
            let mut other_dense = DenseRef::default();
            other_dense.set(slot, v);
            vc.join(&other);
            dense.join(&other_dense);
        }
        _ => {
            let ops = rng.gen_range(0usize..4);
            let (a, b) = gen_pair(rng, ops);
            vc.join(&a);
            dense.join(&b);
        }
    }
}

/// Generate an adaptive clock and its dense shadow via `ops` random
/// mutations applied to both.
fn gen_pair(rng: &mut ChaCha8Rng, ops: usize) -> (VectorClock, DenseRef) {
    let mut vc = VectorClock::new();
    let mut dense = DenseRef::default();
    for _ in 0..ops {
        mutate_both(rng, &mut vc, &mut dense);
    }
    (vc, dense)
}

#[test]
fn adaptive_clock_matches_dense_reference_componentwise() {
    for case in 0..512 {
        let mut rng = rng_for(case);
        let ops = rng.gen_range(0usize..8);
        let (vc, dense) = gen_pair(&mut rng, ops);
        for slot in 0..8 {
            assert_eq!(
                vc.get(slot),
                dense.get(slot),
                "case {case}: slot {slot} of {vc:?} vs {dense:?}"
            );
        }
        assert_eq!(
            vc.iter_nonzero().count(),
            dense.entries.iter().filter(|&&v| v > 0).count(),
            "case {case}: nonzero count of {vc:?}"
        );
    }
}

#[test]
fn adaptive_clock_orderings_match_dense_reference() {
    for case in 0..512 {
        let mut rng = rng_for(case);
        let a_ops = rng.gen_range(0usize..6);
        let b_ops = rng.gen_range(0usize..6);
        let (a, a_dense) = gen_pair(&mut rng, a_ops);
        let (b, b_dense) = gen_pair(&mut rng, b_ops);
        let leq = a_dense.leq(&b_dense);
        let geq = b_dense.leq(&a_dense);
        assert_eq!(a.leq(&b), leq, "case {case}: {a:?} ≤ {b:?}");
        assert_eq!(b.leq(&a), geq, "case {case}: {b:?} ≤ {a:?}");
        assert_eq!(
            a.concurrent_with(&b),
            !leq && !geq,
            "case {case}: {a:?} ∥ {b:?}"
        );
        assert_eq!(
            a.happens_before(&b),
            leq && !geq,
            "case {case}: {a:?} → {b:?}"
        );
        assert_eq!(a == b, leq && geq, "case {case}: {a:?} == {b:?}");
    }
}

#[test]
fn adaptive_clock_join_matches_dense_reference() {
    for case in 0..512 {
        let mut rng = rng_for(case);
        let a_ops = rng.gen_range(0usize..6);
        let b_ops = rng.gen_range(0usize..6);
        let (mut a, mut a_dense) = gen_pair(&mut rng, a_ops);
        let (b, b_dense) = gen_pair(&mut rng, b_ops);
        a.join(&b);
        a_dense.join(&b_dense);
        for slot in 0..8 {
            assert_eq!(
                a.get(slot),
                a_dense.get(slot),
                "case {case}: join slot {slot}"
            );
        }
    }
}

#[test]
fn adaptive_clock_serde_roundtrip_is_semantic_identity() {
    use home::trace::VectorClock as VC;
    for case in 0..256 {
        let mut rng = rng_for(case);
        let ops = rng.gen_range(0usize..8);
        let (vc, _) = gen_pair(&mut rng, ops);
        let json = serde_json::to_string(&vc).expect("roundtrip encode");
        let back: VC = serde_json::from_str(&json).expect("roundtrip decode");
        assert_eq!(vc, back, "case {case}: {json}");
    }
}

// ---- lockset interning table ------------------------------------------------

#[test]
fn lockset_table_ids_are_stable_and_faithful() {
    use home::trace::{LocksetId, LocksetTable};
    for case in 0..256 {
        let mut rng = rng_for(case);
        let mut table = LocksetTable::new();
        let mut ids: Vec<LocksetId> = vec![LocksetTable::EMPTY];
        let mut sets: Vec<LockSet> = vec![LockSet::new()];
        for _ in 0..rng.gen_range(1usize..24) {
            let pick = rng.gen_range(0usize..ids.len());
            let lock = LockId(rng.gen_range(0u32..8));
            let (id, set) = if rng.gen_bool(0.5) {
                let mut set = sets[pick].clone();
                set.insert(lock);
                (table.with_insert(ids[pick], lock), set)
            } else {
                let mut set = sets[pick].clone();
                set.remove(lock);
                (table.with_remove(ids[pick], lock), set)
            };
            // The id must resolve to exactly the set the reference built.
            assert_eq!(table.get(id), &set, "case {case}");
            // Re-interning the same set must return the same id.
            assert_eq!(table.intern(set.clone()), id, "case {case}: unstable id");
            ids.push(id);
            sets.push(set);
        }
        // Distinct sets must have distinct ids (hash-consing is injective).
        for i in 0..ids.len() {
            for j in i + 1..ids.len() {
                assert_eq!(
                    ids[i] == ids[j],
                    sets[i] == sets[j],
                    "case {case}: ids {i},{j}"
                );
            }
        }
    }
}

#[test]
fn lockset_table_disjointness_cache_matches_set_semantics() {
    use home::trace::LocksetTable;
    for case in 0..256 {
        let mut rng = rng_for(case);
        let mut table = LocksetTable::new();
        let ids: Vec<_> = (0..rng.gen_range(2usize..8))
            .map(|_| table.intern(gen_lockset(&mut rng)))
            .collect();
        // Query every pair twice (second hit exercises the memo cache) and
        // in both orders (the cache key is symmetric).
        for _ in 0..2 {
            for &a in &ids {
                for &b in &ids {
                    let expected = table.get(a).clone().disjoint(table.get(b));
                    assert_eq!(table.disjoint(a, b), expected, "case {case}: {a:?},{b:?}");
                    assert_eq!(table.disjoint(b, a), expected, "case {case}: symmetric");
                }
            }
        }
    }
}

// ---- DSL parse ∘ print round-trip -------------------------------------------

fn gen_name(rng: &mut ChaCha8Rng) -> String {
    // Lowercase identifiers that cannot collide with DSL keywords.
    format!("v{}", rng.gen_range(0u32..40))
}

fn gen_expr(rng: &mut ChaCha8Rng, depth: usize) -> Expr {
    if depth == 0 || rng.gen_bool(0.4) {
        return match rng.gen_range(0u32..7) {
            0 => Expr::Int(rng.gen_range(0i64..100)),
            1 => Expr::Rank,
            2 => Expr::Size,
            3 => Expr::ThreadId,
            4 => Expr::NumThreads,
            5 => Expr::Any,
            _ => Expr::Var(gen_name(rng)),
        };
    }
    match rng.gen_range(0u32..6) {
        0 => Expr::bin(
            BinOp::Add,
            gen_expr(rng, depth - 1),
            gen_expr(rng, depth - 1),
        ),
        1 => Expr::bin(
            BinOp::Mul,
            gen_expr(rng, depth - 1),
            gen_expr(rng, depth - 1),
        ),
        2 => Expr::bin(
            BinOp::Eq,
            gen_expr(rng, depth - 1),
            gen_expr(rng, depth - 1),
        ),
        3 => Expr::bin(
            BinOp::Lt,
            gen_expr(rng, depth - 1),
            gen_expr(rng, depth - 1),
        ),
        4 => Expr::Neg(Box::new(gen_expr(rng, depth - 1))),
        _ => Expr::Not(Box::new(gen_expr(rng, depth - 1))),
    }
}

fn gen_block(rng: &mut ChaCha8Rng, depth: usize, max_len: usize) -> Vec<Stmt> {
    let len = rng.gen_range(1usize..max_len.max(2));
    (0..len).map(|_| gen_stmt(rng, depth)).collect()
}

fn gen_stmt(rng: &mut ChaCha8Rng, depth: usize) -> Stmt {
    if depth == 0 || rng.gen_bool(0.5) {
        return match rng.gen_range(0u32..9) {
            0 => b::decl(&gen_name(rng), gen_expr(rng, 2)),
            1 => b::shared_decl(&gen_name(rng), gen_expr(rng, 2)),
            2 => b::compute(gen_expr(rng, 2)),
            3 => b::send(gen_expr(rng, 1), gen_expr(rng, 1), gen_expr(rng, 1)),
            4 => b::recv(gen_expr(rng, 1), gen_expr(rng, 1)),
            5 => b::mpi(MpiStmt::Barrier { comm: None }),
            6 => b::mpi(MpiStmt::Allreduce {
                op: IrReduceOp::Max,
                count: gen_expr(rng, 1),
                comm: None,
            }),
            7 => b::mpi(MpiStmt::Probe {
                src: gen_expr(rng, 1),
                tag: gen_expr(rng, 1),
                comm: None,
            }),
            _ => b::omp_barrier(),
        };
    }
    match rng.gen_range(0u32..9) {
        0 => b::if_then(gen_expr(rng, 2), gen_block(rng, depth - 1, 4)),
        1 => b::if_else(
            gen_expr(rng, 2),
            gen_block(rng, depth - 1, 4),
            gen_block(rng, depth - 1, 3),
        ),
        2 => b::seq_for(
            &gen_name(rng),
            gen_expr(rng, 1),
            gen_expr(rng, 1),
            gen_block(rng, depth - 1, 4),
        ),
        3 => b::omp_parallel(gen_expr(rng, 1), gen_block(rng, depth - 1, 4)),
        4 => b::omp_for(
            &gen_name(rng),
            gen_expr(rng, 1),
            gen_expr(rng, 1),
            gen_block(rng, depth - 1, 4),
        ),
        5 => b::omp_single(gen_block(rng, depth - 1, 4)),
        6 => b::omp_master(gen_block(rng, depth - 1, 4)),
        7 => b::omp_critical(&gen_name(rng), gen_block(rng, depth - 1, 4)),
        _ => {
            let sections = (0..rng.gen_range(1usize..3))
                .map(|_| gen_block(rng, depth - 1, 3))
                .collect();
            b::omp_sections(sections)
        }
    }
}

/// print ∘ parse ∘ print is the identity on printed form (canonical printer
/// is a fixpoint), and parse succeeds on everything the builder can produce.
#[test]
fn printed_programs_reparse_and_print_identically() {
    for case in 0..64 {
        let mut rng = rng_for(1_000 + case);
        let body = gen_block(&mut rng, 3, 6);
        let program = home::ir::build::finalize("prop", body);
        let printed = print_program(&program);
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("case {case}: printed program must parse: {e}\n{printed}"));
        assert_eq!(reparsed.stmt_count(), program.stmt_count(), "case {case}");
        let printed2 = print_program(&reparsed);
        assert_eq!(printed, printed2, "case {case}");
    }
}

// ---- static analysis invariants ---------------------------------------------

/// Algorithm 1's marking is exactly "syntactically inside an omp parallel
/// region": instrumented ⇒ in-region, and outside-region reachable calls are
/// never instrumented.
#[test]
fn checklist_instruments_only_hybrid_sites() {
    for case in 0..64 {
        let mut rng = rng_for(2_000 + case);
        let body = gen_block(&mut rng, 3, 6);
        let program = home::ir::build::finalize("prop", body);
        let report = home::static_analysis::analyze(&program);
        for site in &report.checklist.sites {
            if site.instrument {
                assert!(site.in_hybrid_region && site.reachable, "case {case}");
            }
            if !site.in_hybrid_region {
                assert!(!site.instrument, "case {case}");
            }
        }
        assert_eq!(
            report.stats.instrumented + report.stats.skipped,
            report.stats.total_mpi_calls,
            "case {case}"
        );
    }
}
