//! # home-mpi — a simulated MPI library
//!
//! A from-scratch MPI implementation over [`home_sched`] virtual threads,
//! built so the HOME checker can exercise real MPI *semantics* without a
//! cluster:
//!
//! * point-to-point messaging with envelope matching
//!   (`MPI_ANY_SOURCE`/`MPI_ANY_TAG` wildcards, per-channel non-overtaking);
//! * nonblocking operations (`Isend`/`Irecv`/`Wait`/`Test`/`Waitall`);
//! * probing (`Probe`/`Iprobe`);
//! * collectives (`Barrier`, `Bcast`, `Reduce`, `Allreduce`, `Gather`,
//!   `Scatter`, `Allgather`, `Alltoall`) via ordered per-communicator slots;
//! * communicator management (`Comm_dup`, `Comm_split`);
//! * the four `MPI_THREAD_*` support levels of `MPI_Init_thread`;
//! * a virtual-time network model (latency + bandwidth + per-call CPU cost).
//!
//! The simulator is deliberately *permissive*: misuse that real MPI leaves
//! undefined (concurrent collectives by threads of one process, shared
//! request completion, same-tag thread races) executes and produces its
//! observable consequences — mismatch errors, nondeterministic matching, or
//! deadlocks caught by the scheduler — so the checkers have something real
//! to detect.

mod collective;
mod comm;
mod config;
mod error;
mod msg;
mod process;
mod reqs;
mod world;

pub use collective::ReduceOp;
pub use comm::{CommInfo, CommTable};
pub use config::{LatencyModel, MpiConfig};
pub use error::{MpiError, MpiResult};
pub use msg::{payload, Message, Payload, SrcSpec, Status, TagSpec, ANY_SOURCE, ANY_TAG};
pub use process::Process;
pub use world::World;
