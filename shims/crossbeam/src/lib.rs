//! Offline shim for the `crossbeam` API subset used in this repository
//! (currently only `queue::SegQueue`). Backed by a mutex-protected
//! `VecDeque`; the trace sink needs MPSC-safety and FIFO order, not
//! lock-freedom.

pub mod queue {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::Mutex;

    /// Unbounded MPMC FIFO queue with `SegQueue`'s interface.
    pub struct SegQueue<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> SegQueue<T> {
        /// Create an empty queue.
        pub fn new() -> SegQueue<T> {
            SegQueue {
                inner: Mutex::new(VecDeque::new()),
            }
        }

        fn guard(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            self.inner
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
        }

        /// Append an element at the back.
        pub fn push(&self, value: T) {
            self.guard().push_back(value);
        }

        /// Remove the front element, if any.
        pub fn pop(&self) -> Option<T> {
            self.guard().pop_front()
        }

        /// Number of buffered elements.
        pub fn len(&self) -> usize {
            self.guard().len()
        }

        /// True if no elements are buffered.
        pub fn is_empty(&self) -> bool {
            self.guard().is_empty()
        }

        /// Take every buffered element in one lock acquisition, leaving the
        /// queue empty. (Extension over the upstream API: the upstream
        /// lock-free queue cannot offer an atomic drain, but this shim can,
        /// and the trace sink's end-of-run drain wants one lock + one move
        /// instead of a pop-per-element loop.)
        pub fn take_all(&self) -> VecDeque<T> {
            std::mem::take(&mut *self.guard())
        }
    }

    impl<T> Default for SegQueue<T> {
        fn default() -> Self {
            SegQueue::new()
        }
    }

    impl<T> fmt::Debug for SegQueue<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("SegQueue")
                .field("len", &self.len())
                .finish()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_order() {
            let q = SegQueue::new();
            q.push(1);
            q.push(2);
            assert_eq!(q.len(), 2);
            assert_eq!(q.pop(), Some(1));
            assert_eq!(q.pop(), Some(2));
            assert_eq!(q.pop(), None);
            assert!(q.is_empty());
        }

        #[test]
        fn concurrent_pushes_all_arrive() {
            let q = std::sync::Arc::new(SegQueue::new());
            let handles: Vec<_> = (0..4)
                .map(|t| {
                    let q = std::sync::Arc::clone(&q);
                    std::thread::spawn(move || {
                        for i in 0..100 {
                            q.push(t * 100 + i);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(q.len(), 400);
        }
    }
}
