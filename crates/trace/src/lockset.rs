//! Lock sets for the Eraser-style analysis, plus the hash-consing
//! [`LocksetTable`] the detectors use to avoid per-event set clones.

use crate::fxhash::FxHashMap;
use crate::ids::LockId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A set of locks, kept as a small sorted vector (lock sets are tiny in
/// practice — a handful of critical sections at most).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct LockSet {
    locks: Vec<LockId>,
}

impl LockSet {
    /// The empty lock set.
    pub fn new() -> Self {
        LockSet::default()
    }

    /// Insert a lock; returns true if newly added.
    pub fn insert(&mut self, lock: LockId) -> bool {
        match self.locks.binary_search(&lock) {
            Ok(_) => false,
            Err(pos) => {
                self.locks.insert(pos, lock);
                true
            }
        }
    }

    /// Remove a lock; returns true if it was present.
    pub fn remove(&mut self, lock: LockId) -> bool {
        match self.locks.binary_search(&lock) {
            Ok(pos) => {
                self.locks.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// Membership test.
    pub fn contains(&self, lock: LockId) -> bool {
        self.locks.binary_search(&lock).is_ok()
    }

    /// Set intersection (the candidate-lockset refinement step of Eraser).
    pub fn intersect(&self, other: &LockSet) -> LockSet {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.locks.len() && j < other.locks.len() {
            match self.locks[i].cmp(&other.locks[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(self.locks[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        LockSet { locks: out }
    }

    /// True if the intersection with `other` is empty — the Eraser race
    /// condition on two conflicting accesses.
    pub fn disjoint(&self, other: &LockSet) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < self.locks.len() && j < other.locks.len() {
            match self.locks[i].cmp(&other.locks[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return false,
            }
        }
        true
    }

    /// Number of locks held.
    pub fn len(&self) -> usize {
        self.locks.len()
    }

    /// True if no locks are held.
    pub fn is_empty(&self) -> bool {
        self.locks.is_empty()
    }

    /// Iterate the locks in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = LockId> + '_ {
        self.locks.iter().copied()
    }
}

impl FromIterator<LockId> for LockSet {
    fn from_iter<I: IntoIterator<Item = LockId>>(iter: I) -> Self {
        let mut ls = LockSet::new();
        for l in iter {
            ls.insert(l);
        }
        ls
    }
}

impl fmt::Display for LockSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, l) in self.locks.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, "}}")
    }
}

/// Identifier of an interned [`LockSet`] in a [`LocksetTable`].
///
/// Ids are only meaningful relative to the table that produced them; id `0`
/// is always the empty set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LocksetId(pub u32);

/// A per-run hash-consing table for lock sets.
///
/// Detector segment state stores [`LocksetId`]s instead of owned
/// [`LockSet`]s: the distinct lock sets a run ever holds number a handful
/// (nesting depth × lock count), while access events number millions, so
/// interning turns the per-event lockset clone into a `u32` copy and the
/// per-pair disjointness walk into a memoized table lookup.
#[derive(Debug, Default)]
pub struct LocksetTable {
    sets: Vec<LockSet>,
    ids: FxHashMap<LockSet, LocksetId>,
    /// Memoized symmetric disjointness, keyed with the smaller id first.
    disjoint: FxHashMap<(LocksetId, LocksetId), bool>,
}

impl LocksetTable {
    /// The id every table assigns to the empty set.
    pub const EMPTY: LocksetId = LocksetId(0);

    /// A table containing only the empty set.
    pub fn new() -> Self {
        let mut table = LocksetTable::default();
        table.intern(LockSet::new());
        table
    }

    /// Intern a set, returning its stable id (the same set always maps to
    /// the same id within one table).
    pub fn intern(&mut self, set: LockSet) -> LocksetId {
        if let Some(&id) = self.ids.get(&set) {
            return id;
        }
        let id = LocksetId(self.sets.len() as u32);
        self.ids.insert(set.clone(), id);
        self.sets.push(set);
        id
    }

    /// Resolve an id back to its set. Ids from another table may panic or
    /// alias arbitrary sets.
    pub fn get(&self, id: LocksetId) -> &LockSet {
        &self.sets[id.0 as usize]
    }

    /// Id of `id`'s set with `lock` added.
    pub fn with_insert(&mut self, id: LocksetId, lock: LockId) -> LocksetId {
        if self.get(id).contains(lock) {
            return id;
        }
        let mut set = self.get(id).clone();
        set.insert(lock);
        self.intern(set)
    }

    /// Id of `id`'s set with `lock` removed.
    pub fn with_remove(&mut self, id: LocksetId, lock: LockId) -> LocksetId {
        if !self.get(id).contains(lock) {
            return id;
        }
        let mut set = self.get(id).clone();
        set.remove(lock);
        self.intern(set)
    }

    /// Memoized [`LockSet::disjoint`] on interned ids.
    pub fn disjoint(&mut self, a: LocksetId, b: LocksetId) -> bool {
        if a == b {
            // A set intersects itself unless it is empty.
            return self.get(a).is_empty();
        }
        let key = (a.min(b), a.max(b));
        if let Some(&cached) = self.disjoint.get(&key) {
            return cached;
        }
        let result = self.get(a).disjoint(self.get(b));
        self.disjoint.insert(key, result);
        result
    }

    /// Number of distinct sets interned (≥ 1: the empty set).
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// Never true — the empty set is always interned.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: u32) -> LockId {
        LockId(i)
    }

    #[test]
    fn insert_remove_contains() {
        let mut ls = LockSet::new();
        assert!(ls.insert(l(2)));
        assert!(ls.insert(l(1)));
        assert!(!ls.insert(l(2)), "duplicate insert is a no-op");
        assert!(ls.contains(l(1)));
        assert_eq!(ls.len(), 2);
        assert!(ls.remove(l(1)));
        assert!(!ls.remove(l(1)));
        assert!(!ls.contains(l(1)));
    }

    #[test]
    fn intersection() {
        let a = LockSet::from_iter([l(1), l(2), l(3)]);
        let b = LockSet::from_iter([l(2), l(3), l(4)]);
        let i = a.intersect(&b);
        assert_eq!(i, LockSet::from_iter([l(2), l(3)]));
        assert!(!a.disjoint(&b));
    }

    #[test]
    fn disjointness() {
        let a = LockSet::from_iter([l(1), l(3)]);
        let b = LockSet::from_iter([l(2), l(4)]);
        assert!(a.disjoint(&b));
        assert!(a.intersect(&b).is_empty());
        assert!(
            LockSet::new().disjoint(&a),
            "empty set is disjoint from all"
        );
    }

    #[test]
    fn display() {
        let a = LockSet::from_iter([l(2), l(0)]);
        assert_eq!(a.to_string(), "{lock0, lock2}");
    }

    #[test]
    fn table_interns_stable_ids() {
        let mut t = LocksetTable::new();
        assert_eq!(t.intern(LockSet::new()), LocksetTable::EMPTY);
        let a = t.with_insert(LocksetTable::EMPTY, l(1));
        let b = t.with_insert(a, l(2));
        assert_ne!(a, b);
        assert_eq!(
            t.with_insert(LocksetTable::EMPTY, l(1)),
            a,
            "same set, same id"
        );
        assert_eq!(t.with_remove(b, l(2)), a, "remove returns to the prior set");
        assert_eq!(
            t.with_remove(a, l(9)),
            a,
            "removing an absent lock is a no-op"
        );
        assert_eq!(t.get(b), &LockSet::from_iter([l(1), l(2)]));
    }

    #[test]
    fn table_disjointness_matches_sets() {
        let mut t = LocksetTable::new();
        let a = t.intern(LockSet::from_iter([l(1), l(3)]));
        let b = t.intern(LockSet::from_iter([l(2), l(4)]));
        let c = t.intern(LockSet::from_iter([l(3)]));
        assert!(t.disjoint(a, b));
        assert!(t.disjoint(b, a), "symmetric");
        assert!(!t.disjoint(a, c));
        assert!(!t.disjoint(a, a), "nonempty set intersects itself");
        assert!(t.disjoint(LocksetTable::EMPTY, LocksetTable::EMPTY));
        assert!(t.disjoint(LocksetTable::EMPTY, a));
        // Cached answers stay correct on repeat queries.
        assert!(t.disjoint(a, b));
        assert!(!t.disjoint(c, a));
    }
}
