//! Per-process OpenMP runtime: parallel regions and the thread context.

use crate::lock::OmpLock;
use crate::team::{static_range, Team};
use home_sched::{JoinHandle, Runtime, SchedError, SchedResult, SimTime};
use home_trace::{
    AccessKind, BarrierId, Collector, EventKind, MemLoc, Rank, RegionId, SrcLoc, Tid,
};
use parking_lot::Mutex;
use std::cell::Cell;
use std::collections::HashMap;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Virtual-time costs of OpenMP constructs (per occurrence).
#[derive(Debug, Clone, Copy)]
pub struct OmpCosts {
    /// Cost charged to the master per forked thread.
    pub fork_per_thread: SimTime,
    /// Cost of one barrier participation.
    pub barrier: SimTime,
    /// Cost of entering a critical section.
    pub critical: SimTime,
    /// Cost of recording one instrumentation event (charged only when the
    /// event is actually admitted by the collector's filter — this is how
    /// instrumentation overhead becomes visible in the makespan).
    pub event: SimTime,
}

impl OmpCosts {
    /// Defaults patterned on commodity hardware.
    pub fn default_costs() -> Self {
        OmpCosts {
            fork_per_thread: SimTime::from_micros(2),
            barrier: SimTime::from_micros(1),
            critical: SimTime::from_nanos(200),
            event: SimTime::from_nanos(120),
        }
    }

    /// Zero costs for pure-semantics tests.
    pub fn zero() -> Self {
        OmpCosts {
            fork_per_thread: SimTime::ZERO,
            barrier: SimTime::ZERO,
            critical: SimTime::ZERO,
            event: SimTime::ZERO,
        }
    }
}

impl Default for OmpCosts {
    fn default() -> Self {
        OmpCosts::default_costs()
    }
}

/// The OpenMP runtime of one MPI process.
///
/// Owns the region counter, named critical-section locks, and the trace
/// [`Collector`] all events of this process flow through. Clone freely.
///
/// ```
/// use home_omp::{OmpCosts, OmpProc};
/// use home_sched::{Runtime, SchedConfig};
/// use home_trace::{Collector, Rank};
/// use std::sync::atomic::{AtomicU64, Ordering};
/// use std::sync::Arc;
///
/// let rt = Runtime::new(SchedConfig::deterministic(0));
/// let proc = OmpProc::with_costs(rt.clone(), Rank(0), Collector::null(), OmpCosts::zero());
/// let sum = Arc::new(AtomicU64::new(0));
/// let s2 = Arc::clone(&sum);
/// rt.spawn("rank0", move || {
///     proc.parallel(4, move |ctx| {
///         for i in ctx.for_static(100) {
///             s2.fetch_add(i, Ordering::Relaxed);
///         }
///         ctx.barrier()
///     })
///     .unwrap();
/// });
/// rt.run().unwrap();
/// assert_eq!(sum.load(Ordering::Relaxed), 4950);
/// ```
#[derive(Clone)]
pub struct OmpProc {
    rt: Runtime,
    rank: Rank,
    collector: Collector,
    costs: OmpCosts,
    regions: Arc<AtomicU64>,
    locks: Arc<Mutex<HashMap<String, OmpLock>>>,
}

impl OmpProc {
    /// Create the runtime for `rank`, emitting events into `collector`.
    pub fn new(rt: Runtime, rank: Rank, collector: Collector) -> Self {
        OmpProc::with_costs(rt, rank, collector, OmpCosts::default_costs())
    }

    /// Create with explicit construct costs.
    pub fn with_costs(rt: Runtime, rank: Rank, collector: Collector, costs: OmpCosts) -> Self {
        OmpProc {
            rt,
            rank,
            collector,
            costs,
            regions: Arc::new(AtomicU64::new(0)),
            locks: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// This process's rank.
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// The scheduler.
    pub fn runtime(&self) -> &Runtime {
        &self.rt
    }

    /// The trace collector.
    pub fn collector(&self) -> &Collector {
        &self.collector
    }

    /// The construct cost table.
    pub fn costs(&self) -> &OmpCosts {
        &self.costs
    }

    /// Get or create the named critical-section lock.
    pub fn critical_lock(&self, name: &str) -> OmpLock {
        let mut locks = self.locks.lock();
        locks
            .entry(name.to_string())
            .or_insert_with(|| OmpLock::new(self.rt.clone(), name))
            .clone()
    }

    /// Emit an event from the master's *sequential* part (outside regions).
    pub fn emit_seq(&self, loc: Option<SrcLoc>, kind: EventKind) {
        self.emit_inner(Tid(0), None, loc, kind);
    }

    fn emit_inner(&self, tid: Tid, region: Option<RegionId>, loc: Option<SrcLoc>, kind: EventKind) {
        let recorded = self.collector.emit(
            self.rank,
            tid,
            region,
            self.rt.clock().as_nanos(),
            loc,
            kind,
        );
        if recorded {
            self.rt.advance(self.costs.event);
        }
    }

    /// Execute `f` on a team of `nthreads` OpenMP threads
    /// (`#pragma omp parallel num_threads(nthreads)`). The calling virtual
    /// thread becomes the master (tid 0); `nthreads − 1` workers are forked.
    /// Nested parallelism is not supported.
    ///
    /// Returns the first error any team member hit (deadlock/shutdown).
    pub fn parallel<F>(&self, nthreads: usize, f: F) -> SchedResult<()>
    where
        F: Fn(&OmpCtx) -> SchedResult<()> + Send + Sync + 'static,
    {
        assert!(nthreads >= 1, "a team needs at least one thread");
        let region = RegionId(self.regions.fetch_add(1, Ordering::Relaxed));
        let team = Team::new(
            self.rt.clone(),
            nthreads,
            format!("rank{}.region{}", self.rank.0, region.0),
        );
        self.emit_inner(
            Tid(0),
            None,
            None,
            EventKind::Fork {
                region,
                nthreads: nthreads as u32,
            },
        );
        self.rt
            .advance(self.costs.fork_per_thread.scale(nthreads as f64));

        let f = Arc::new(f);
        let mut handles: Vec<JoinHandle<SchedResult<()>>> = Vec::with_capacity(nthreads - 1);
        for t in 1..nthreads {
            let proc = self.clone();
            let team = team.clone();
            let f = Arc::clone(&f);
            handles.push(self.rt.spawn(
                format!("rank{}.r{}.t{}", self.rank.0, region.0, t),
                move || {
                    let ctx = OmpCtx::new(proc, team, region, Tid(t as u32));
                    f(&ctx)
                },
            ));
        }
        let master_ctx = OmpCtx::new(self.clone(), team, region, Tid(0));
        let master_result = f(&master_ctx);

        let mut first_err: Option<SchedError> = master_result.err();
        for h in handles {
            match h.join() {
                Ok(Ok(())) => {}
                Ok(Err(e)) => first_err = first_err.or(Some(e)),
                Err(home_sched::JoinError::Panicked(msg)) => {
                    panic!("OpenMP worker thread panicked: {msg}")
                }
                Err(home_sched::JoinError::Sched(e)) => first_err = first_err.or(Some(e)),
            }
        }
        self.emit_inner(Tid(0), None, None, EventKind::JoinRegion { region });
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

impl std::fmt::Debug for OmpProc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OmpProc").field("rank", &self.rank).finish()
    }
}

/// Execution context of one OpenMP thread inside a parallel region.
///
/// Not `Sync`: each thread owns its context. Worksharing constructs
/// (`single`, `sections`, dynamic `for`, reductions) rely on SPMD execution:
/// every team member must encounter them in the same order.
pub struct OmpCtx {
    proc: OmpProc,
    team: Team,
    region: RegionId,
    tid: Tid,
    constructs: Cell<u64>,
    loc: Cell<Option<u32>>,
    file: std::cell::RefCell<Option<String>>,
}

impl OmpCtx {
    fn new(proc: OmpProc, team: Team, region: RegionId, tid: Tid) -> Self {
        OmpCtx {
            proc,
            team,
            region,
            tid,
            constructs: Cell::new(0),
            loc: Cell::new(None),
            file: std::cell::RefCell::new(None),
        }
    }

    /// `omp_get_thread_num()`.
    pub fn tid(&self) -> Tid {
        self.tid
    }

    /// `omp_get_num_threads()`.
    pub fn nthreads(&self) -> usize {
        self.team.nthreads()
    }

    /// The dynamic region instance.
    pub fn region(&self) -> RegionId {
        self.region
    }

    /// The owning process's rank.
    pub fn rank(&self) -> Rank {
        self.proc.rank()
    }

    /// The OpenMP runtime of this process.
    pub fn proc(&self) -> &OmpProc {
        &self.proc
    }

    /// The scheduler.
    pub fn runtime(&self) -> &Runtime {
        self.proc.runtime()
    }

    /// Set the source location attached to subsequently emitted events
    /// (used by the interpreter to point reports at DSL lines).
    pub fn set_loc(&self, loc: Option<SrcLoc>) {
        match loc {
            Some(l) => {
                self.loc.set(Some(l.line));
                *self.file.borrow_mut() = Some(l.file);
            }
            None => {
                self.loc.set(None);
                *self.file.borrow_mut() = None;
            }
        }
    }

    fn current_loc(&self) -> Option<SrcLoc> {
        self.loc.get().map(|line| SrcLoc {
            file: self.file.borrow().clone().unwrap_or_default(),
            line,
        })
    }

    fn next_construct(&self) -> u64 {
        let c = self.constructs.get();
        self.constructs.set(c + 1);
        c
    }

    /// Emit an event from this thread (tagged with rank/tid/region/time).
    pub fn emit(&self, kind: EventKind) {
        self.proc
            .emit_inner(self.tid, Some(self.region), self.current_loc(), kind);
    }

    /// Charge virtual compute time.
    pub fn advance(&self, dt: SimTime) {
        self.runtime().advance(dt);
    }

    /// A voluntary scheduling point.
    pub fn yield_now(&self) -> SchedResult<()> {
        self.runtime().yield_now()
    }

    /// `#pragma omp barrier`.
    pub fn barrier(&self) -> SchedResult<()> {
        self.advance(self.proc.costs().barrier);
        let epoch = self.team.barrier_wait()?;
        self.emit(EventKind::Barrier {
            barrier: BarrierId(self.region.0 as u32),
            epoch,
        });
        Ok(())
    }

    /// `#pragma omp critical(name)`.
    pub fn critical<R>(&self, name: &str, f: impl FnOnce() -> R) -> SchedResult<R> {
        let lock = self.proc.critical_lock(name);
        let lock_id = self.proc.collector().intern_lock(name);
        self.advance(self.proc.costs().critical);
        lock.acquire()?;
        self.emit(EventKind::Acquire { lock: lock_id });
        let r = f();
        self.emit(EventKind::Release { lock: lock_id });
        lock.release();
        Ok(r)
    }

    /// `#pragma omp single`: exactly one thread runs `f`; implicit barrier.
    pub fn single<R>(&self, f: impl FnOnce() -> R) -> SchedResult<Option<R>> {
        let r = self.single_nowait(f);
        self.barrier()?;
        r
    }

    /// `#pragma omp single nowait`.
    pub fn single_nowait<R>(&self, f: impl FnOnce() -> R) -> SchedResult<Option<R>> {
        let construct = self.next_construct();
        Ok(if self.team.claim_single(construct) {
            Some(f())
        } else {
            None
        })
    }

    /// `#pragma omp master`: only tid 0 runs `f`; no barrier.
    pub fn master<R>(&self, f: impl FnOnce() -> R) -> Option<R> {
        if self.tid.0 == 0 {
            Some(f())
        } else {
            None
        }
    }

    /// Static `for` schedule: this thread's block of `0..n`.
    pub fn for_static(&self, n: u64) -> Range<u64> {
        static_range(n, self.nthreads(), self.tid.index())
    }

    /// Dynamic `for` schedule over `0..n` in chunks of `chunk`: an iterator
    /// of index ranges claimed on demand.
    pub fn for_dynamic(&self, n: u64, chunk: u64) -> DynFor {
        DynFor {
            team: self.team.clone(),
            construct: self.next_construct(),
            n,
            chunk: chunk.max(1),
        }
    }

    /// `#pragma omp sections`: the given section bodies are distributed over
    /// the team (each runs exactly once); implicit barrier at the end.
    pub fn sections(&self, bodies: &[SectionBody<'_>]) -> SchedResult<()> {
        let construct = self.next_construct();
        while let Some(ix) = self.team.claim_index(construct, bodies.len() as u64) {
            bodies[ix as usize](self)?;
        }
        self.barrier()
    }

    /// Team-wide reduction: combine every thread's `value` with `op`;
    /// all threads receive the result (includes a barrier).
    pub fn reduce(&self, value: f64, op: impl Fn(f64, f64) -> f64) -> SchedResult<f64> {
        let construct = self.next_construct();
        self.team.reduce_contribute(construct, value, op);
        self.barrier()?;
        Ok(self.team.reduce_result(construct))
    }

    /// Record a read of shared variable `name` (optionally one element).
    pub fn read_var(&self, name: &str, index: Option<u64>) {
        let var = self.proc.collector().intern_var(name);
        let loc = match index {
            Some(i) => MemLoc::Elem(var, i),
            None => MemLoc::Var(var),
        };
        self.emit(EventKind::Access {
            loc,
            kind: AccessKind::Read,
        });
    }

    /// Record a write of shared variable `name` (optionally one element).
    pub fn write_var(&self, name: &str, index: Option<u64>) {
        let var = self.proc.collector().intern_var(name);
        let loc = match index {
            Some(i) => MemLoc::Elem(var, i),
            None => MemLoc::Var(var),
        };
        self.emit(EventKind::Access {
            loc,
            kind: AccessKind::Write,
        });
    }
}

/// One `omp sections` section body.
pub type SectionBody<'a> = &'a (dyn Fn(&OmpCtx) -> SchedResult<()> + Sync);

/// Iterator over dynamically scheduled loop chunks.
pub struct DynFor {
    team: Team,
    construct: u64,
    n: u64,
    chunk: u64,
}

impl Iterator for DynFor {
    type Item = Range<u64>;

    fn next(&mut self) -> Option<Range<u64>> {
        self.team.claim_chunk(self.construct, self.n, self.chunk)
    }
}
