//! Simulator configuration and the virtual-time network model.

use home_sched::SimTime;
use home_trace::ThreadLevel;

/// Virtual-time costs of communication, patterned on a small commodity
/// cluster (the paper's EC2 C3 instances): a few microseconds of base
/// latency plus a per-byte transfer cost.
#[derive(Debug, Clone, Copy)]
pub struct LatencyModel {
    /// Fixed per-message latency (network + stack traversal).
    pub base_latency: SimTime,
    /// Transfer cost per payload element (8-byte word).
    pub per_word: SimTime,
    /// CPU overhead charged to the sender per send call.
    pub send_overhead: SimTime,
    /// CPU overhead charged to the receiver per receive completion.
    pub recv_overhead: SimTime,
}

impl LatencyModel {
    /// Roughly 10 GbE-class numbers: 20 µs latency, ~1 ns/word on the wire,
    /// 1 µs of CPU per call on each side.
    pub fn ethernet() -> Self {
        LatencyModel {
            base_latency: SimTime::from_micros(20),
            per_word: SimTime::from_nanos(1),
            send_overhead: SimTime::from_micros(1),
            recv_overhead: SimTime::from_micros(1),
        }
    }

    /// Zero-cost model for pure-semantics tests.
    pub fn zero() -> Self {
        LatencyModel {
            base_latency: SimTime::ZERO,
            per_word: SimTime::ZERO,
            send_overhead: SimTime::ZERO,
            recv_overhead: SimTime::ZERO,
        }
    }

    /// Total in-flight time for a message of `words` payload words.
    pub fn transfer_time(&self, words: usize) -> SimTime {
        self.base_latency + SimTime::from_nanos(self.per_word.as_nanos() * words as u64)
    }
}

/// Configuration of an MPI [`crate::World`].
#[derive(Debug, Clone)]
pub struct MpiConfig {
    /// Highest thread level `MPI_Init_thread` will provide (the *provided*
    /// argument is `min(required, max_thread_level)`), mirroring
    /// implementations built without full `MPI_THREAD_MULTIPLE` support.
    pub max_thread_level: ThreadLevel,
    /// Network cost model.
    pub latency: LatencyModel,
    /// Cost of one collective operation synchronization per participant
    /// (on top of the implied wait time).
    pub collective_overhead: SimTime,
}

impl MpiConfig {
    /// Defaults used by the paper-reproduction harness.
    pub fn cluster() -> Self {
        MpiConfig {
            max_thread_level: ThreadLevel::Multiple,
            latency: LatencyModel::ethernet(),
            collective_overhead: SimTime::from_micros(5),
        }
    }

    /// Zero-cost semantics-only configuration for unit tests.
    pub fn test() -> Self {
        MpiConfig {
            max_thread_level: ThreadLevel::Multiple,
            latency: LatencyModel::zero(),
            collective_overhead: SimTime::ZERO,
        }
    }

    /// Cap the provided thread level.
    pub fn with_max_thread_level(mut self, level: ThreadLevel) -> Self {
        self.max_thread_level = level;
        self
    }
}

impl Default for MpiConfig {
    fn default() -> Self {
        MpiConfig::cluster()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_scales_with_size() {
        let m = LatencyModel::ethernet();
        let small = m.transfer_time(1);
        let big = m.transfer_time(100_000);
        assert!(big > small);
        assert_eq!(
            big.as_nanos() - small.as_nanos(),
            m.per_word.as_nanos() * 99_999
        );
    }

    #[test]
    fn zero_model_is_free() {
        assert_eq!(LatencyModel::zero().transfer_time(1_000_000), SimTime::ZERO);
    }

    #[test]
    fn thread_level_cap() {
        let c = MpiConfig::test().with_max_thread_level(ThreadLevel::Funneled);
        assert_eq!(c.max_thread_level, ThreadLevel::Funneled);
    }
}
