//! Offline shim for `rand_chacha`: a real ChaCha keystream generator (8 and
//! 20 round variants) implementing the `rand` shim's `RngCore` +
//! `SeedableRng`. Streams are deterministic functions of the seed, which is
//! all the scheduler needs; they are not bit-compatible with upstream
//! `rand_chacha` (nothing in this repository depends on the exact stream).

use rand::{RngCore, SeedableRng};

const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

fn chacha_block(key: &[u32; 8], counter: u64, rounds: u32, out: &mut [u32; 16]) {
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&CHACHA_CONST);
    state[4..12].copy_from_slice(key);
    state[12] = counter as u32;
    state[13] = (counter >> 32) as u32;
    state[14] = 0;
    state[15] = 0;
    let initial = state;
    for _ in 0..rounds / 2 {
        // Column round.
        quarter_round(&mut state, 0, 4, 8, 12);
        quarter_round(&mut state, 1, 5, 9, 13);
        quarter_round(&mut state, 2, 6, 10, 14);
        quarter_round(&mut state, 3, 7, 11, 15);
        // Diagonal round.
        quarter_round(&mut state, 0, 5, 10, 15);
        quarter_round(&mut state, 1, 6, 11, 12);
        quarter_round(&mut state, 2, 7, 8, 13);
        quarter_round(&mut state, 3, 4, 9, 14);
    }
    for (o, (s, i)) in out.iter_mut().zip(state.iter().zip(initial.iter())) {
        *o = s.wrapping_add(*i);
    }
}

macro_rules! chacha_rng {
    ($name:ident, $rounds:expr, $doc:literal) => {
        #[doc = $doc]
        #[derive(Clone, Debug)]
        pub struct $name {
            key: [u32; 8],
            counter: u64,
            buffer: [u32; 16],
            /// Next unconsumed word in `buffer`; 16 means "refill".
            index: usize,
        }

        impl $name {
            fn refill(&mut self) {
                chacha_block(&self.key, self.counter, $rounds, &mut self.buffer);
                self.counter = self.counter.wrapping_add(1);
                self.index = 0;
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: [u8; 32]) -> Self {
                let mut key = [0u32; 8];
                for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
                    *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
                }
                $name {
                    key,
                    counter: 0,
                    buffer: [0; 16],
                    index: 16,
                }
            }
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                if self.index >= 16 {
                    self.refill();
                }
                let word = self.buffer[self.index];
                self.index += 1;
                word
            }

            fn next_u64(&mut self) -> u64 {
                let lo = self.next_u32() as u64;
                let hi = self.next_u32() as u64;
                (hi << 32) | lo
            }
        }
    };
}

chacha_rng!(
    ChaCha8Rng,
    8,
    "ChaCha with 8 rounds (the scheduler's default)."
);
chacha_rng!(ChaCha12Rng, 12, "ChaCha with 12 rounds.");
chacha_rng!(ChaCha20Rng, 20, "ChaCha with 20 rounds.");

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be effectively independent");
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[rng.gen_range(0usize..4)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
