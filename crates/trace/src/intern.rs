//! Thread-safe string interners for lock and variable names.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// A thread-safe string ↔ dense-id interner.
///
/// The trace layer stores interned `u32` ids in events; reports resolve them
/// back to names through the interner held by the [`crate::Collector`].
#[derive(Debug, Default, Clone)]
pub struct Interner {
    inner: Arc<RwLock<InternerInner>>,
}

/// Both the map key and the dense-index entry share one `Arc<str>`
/// allocation per distinct name, so interning a new string allocates it
/// exactly once.
#[derive(Debug, Default)]
struct InternerInner {
    by_name: HashMap<Arc<str>, u32>,
    names: Vec<Arc<str>>,
}

impl Interner {
    /// Create an empty interner.
    pub fn new() -> Self {
        Interner::default()
    }

    /// Intern `name`, returning its stable dense id.
    pub fn intern(&self, name: &str) -> u32 {
        if let Some(&id) = self.inner.read().by_name.get(name) {
            return id;
        }
        let mut w = self.inner.write();
        if let Some(&id) = w.by_name.get(name) {
            return id;
        }
        let id = w.names.len() as u32;
        let shared: Arc<str> = Arc::from(name);
        w.names.push(Arc::clone(&shared));
        w.by_name.insert(shared, id);
        id
    }

    /// Resolve an id back to its name (panics on unknown id).
    pub fn resolve(&self, id: u32) -> String {
        self.inner.read().names[id as usize].to_string()
    }

    /// Resolve without panicking.
    pub fn try_resolve(&self, id: u32) -> Option<String> {
        self.inner
            .read()
            .names
            .get(id as usize)
            .map(|name| name.to_string())
    }

    /// Number of interned strings.
    pub fn len(&self) -> usize {
        self.inner.read().names.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let i = Interner::new();
        let a = i.intern("alpha");
        let b = i.intern("beta");
        assert_ne!(a, b);
        assert_eq!(i.intern("alpha"), a);
        assert_eq!(i.resolve(a), "alpha");
        assert_eq!(i.resolve(b), "beta");
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn try_resolve_unknown() {
        let i = Interner::new();
        assert_eq!(i.try_resolve(5), None);
        assert!(i.is_empty());
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let i = Interner::new();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let i = i.clone();
                std::thread::spawn(move || {
                    (0..100)
                        .map(|k| i.intern(&format!("v{k}")))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let results: Vec<Vec<u32>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for r in &results[1..] {
            assert_eq!(r, &results[0], "all threads must agree on ids");
        }
        assert_eq!(i.len(), 100);
    }
}
