//! Inter-procedural analysis (the paper's future-work item): functions in
//! the DSL, and a context-sensitive Algorithm 1 — an MPI call inside a
//! function is instrumented exactly when the function can execute in a
//! parallel context.

use home::prelude::*;

#[test]
fn function_called_from_region_is_instrumented() {
    let src = r#"
        program interproc {
            fn exchange() {
                mpi_recv(from: 0, tag: 9);
            }
            mpi_init_thread(multiple);
            if (rank == 0) {
                mpi_send(to: 1, tag: 9, count: 1);
                mpi_send(to: 1, tag: 9, count: 1);
            }
            if (rank == 1) {
                omp parallel num_threads(2) {
                    call exchange();
                }
            }
            mpi_finalize();
        }
    "#;
    let p = parse(src).unwrap();
    let sr = analyze(&p);
    let recv = sr
        .checklist
        .sites
        .iter()
        .find(|s| s.name == "mpi_recv")
        .expect("recv site found inside the function");
    assert!(
        recv.in_hybrid_region,
        "hybrid context propagates into callee"
    );
    assert!(recv.instrument);

    // And the violation is detected end to end through the call.
    let report = check(&p, &CheckOptions::default());
    assert!(
        report.has(ViolationKind::ConcurrentRecv),
        "{}",
        report.render()
    );
}

#[test]
fn function_called_only_sequentially_is_skipped() {
    let src = r#"
        program seqfn {
            fn reduce_all() {
                mpi_allreduce(sum, count: 1);
            }
            mpi_init_thread(multiple);
            call reduce_all();
            omp parallel num_threads(2) { compute(10); }
            mpi_finalize();
        }
    "#;
    let p = parse(src).unwrap();
    let sr = analyze(&p);
    let site = sr
        .checklist
        .sites
        .iter()
        .find(|s| s.name == "mpi_allreduce")
        .unwrap();
    assert!(!site.in_hybrid_region);
    assert!(!site.instrument, "sequential-only callee is never wrapped");
    let report = check(&p, &CheckOptions::default());
    assert!(report.violations.is_empty(), "{}", report.render());
}

#[test]
fn transitive_hybrid_context_propagates() {
    // region → f → g: g's MPI call must be instrumented.
    let src = r#"
        program transitive {
            fn g() {
                mpi_barrier();
            }
            fn f() {
                call g();
            }
            mpi_init_thread(multiple);
            omp parallel num_threads(2) {
                call f();
            }
            mpi_finalize();
        }
    "#;
    let p = parse(src).unwrap();
    let sr = analyze(&p);
    let barrier = sr
        .checklist
        .sites
        .iter()
        .find(|s| s.name == "mpi_barrier")
        .unwrap();
    assert!(barrier.in_hybrid_region, "two-level call chain");
    assert!(barrier.instrument);
    // Both threads execute g's barrier concurrently → collective violation,
    // reported with the *function's* source line.
    let report = check(&p, &CheckOptions::default());
    assert!(
        report.has(ViolationKind::CollectiveCall),
        "{}",
        report.render()
    );
}

#[test]
fn uncalled_function_sites_are_unreachable() {
    let src = r#"
        program dead {
            fn never_called() {
                mpi_barrier();
            }
            mpi_init_thread(multiple);
            mpi_finalize();
        }
    "#;
    let sr = analyze(&parse(src).unwrap());
    let site = sr
        .checklist
        .sites
        .iter()
        .find(|s| s.name == "mpi_barrier")
        .unwrap();
    assert!(!site.reachable);
    assert!(!site.instrument);
}

#[test]
fn functions_share_caller_environment() {
    // Inlined semantics: the callee reads and writes the caller's
    // variables (including loop indices used as tags).
    let src = r#"
        program envshare {
            fn send_tagged() {
                mpi_send(to: 1, tag: t, count: 1);
            }
            mpi_init_thread(multiple);
            if (rank == 0) {
                for t in 10..13 {
                    call send_tagged();
                }
            }
            if (rank == 1) {
                for t in 10..13 {
                    mpi_recv(from: 0, tag: t);
                }
            }
            mpi_finalize();
        }
    "#;
    let report = check(&parse(src).unwrap(), &CheckOptions::default());
    assert!(report.violations.is_empty(), "{}", report.render());
    assert!(report.deadlocks.is_empty());
    assert!(report.incidents.is_empty(), "{:?}", report.incidents);
}

#[test]
fn unknown_function_is_a_runtime_error_and_recursion_is_bounded() {
    let report = check(
        &parse("program u { call nosuch(); }").unwrap(),
        &CheckOptions::default().with_seeds(vec![1]),
    );
    // Rank-level runtime errors do not crash the checker; nothing detected.
    assert!(report.violations.is_empty());

    let rec = r#"
        program r {
            fn loopy() { call loopy(); }
            mpi_init_thread(multiple);
            call loopy();
            mpi_finalize();
        }
    "#;
    // Must terminate (depth guard), not overflow the stack.
    let report = check(
        &parse(rec).unwrap(),
        &CheckOptions::default().with_seeds(vec![1]),
    );
    assert!(report.violations.is_empty());
}

#[test]
fn functions_print_and_reparse() {
    let src = r#"
        program fmtfn {
            fn helper() {
                compute(10, reads: u, writes: v);
                mpi_barrier();
            }
            mpi_init_thread(multiple);
            call helper();
            mpi_finalize();
        }
    "#;
    let p1 = parse(src).unwrap();
    assert_eq!(p1.functions.len(), 1);
    let printed = print_program(&p1);
    assert!(printed.contains("fn helper() {"), "{printed}");
    assert!(printed.contains("call helper();"));
    let p2 = parse(&printed).unwrap();
    assert_eq!(p1.stmt_count(), p2.stmt_count());
    assert_eq!(printed, print_program(&p2));
}

#[test]
fn region_classification_sees_through_calls() {
    let src = r#"
        program regionclass {
            fn quiet() { compute(5); }
            fn chatty() { mpi_barrier(); }
            mpi_init_thread(multiple);
            omp parallel num_threads(2) { call quiet(); }
            omp parallel num_threads(2) { omp master { call chatty(); } }
            mpi_finalize();
        }
    "#;
    let sr = analyze(&parse(src).unwrap());
    assert_eq!(sr.stats.regions, 2);
    assert_eq!(
        sr.stats.error_free_regions, 1,
        "only the compute-only region is error-free"
    );
}

#[test]
fn two_deep_chain_with_outer_lock_yields_differing_per_site_checklists() {
    // The bundled interproc2 program: the recv is reachable only via
    // relay -> fetch with critical(net) held in the outermost frame, and
    // a separate unprotected allreduce region runs on every rank.
    let src = std::fs::read_to_string("programs/interproc2.hmp").unwrap();
    let p = parse(&src).unwrap();
    let sr = analyze(&p);

    let site = |name: &str| {
        sr.checklist
            .sites
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("no {name} site"))
    };
    let recv = site("mpi_recv");
    assert!(recv.instrument, "context flows through two call levels");
    assert_eq!(recv.must_locks, vec!["net".to_string()]);
    assert!(recv.multi_thread);
    let allreduce = site("mpi_allreduce");
    assert!(allreduce.instrument);
    assert!(allreduce.must_locks.is_empty());

    // The two instrumented sites carry *different* per-site monitored
    // sets: the lock-serialized recv emits nothing, the allreduce emits
    // its collective marker.
    assert_eq!(recv.monitored.as_deref(), Some(&[][..]));
    assert_eq!(
        allreduce.monitored.as_deref(),
        Some(&["collectivetmp".to_string()][..])
    );

    // Static candidates: a potential deadlock on the locked blocking recv
    // and an unprotected collective write.
    use home::static_analysis::CandidateKind;
    let kinds: Vec<CandidateKind> = sr.candidates.iter().map(|c| c.kind).collect();
    assert!(
        kinds.contains(&CandidateKind::PotentialDeadlock),
        "{kinds:?}"
    );
    assert!(
        kinds.contains(&CandidateKind::UnprotectedMonitoredWrite),
        "{kinds:?}"
    );

    // End to end, the cross-check classifies them: the program completes
    // under every bundled seed (deadlock not reproduced) while the
    // collective violation is confirmed dynamically.
    let report = check(&p, &CheckOptions::default());
    assert!(report.deadlocks.is_empty(), "{}", report.render());
    assert!(
        report.has(ViolationKind::CollectiveCall),
        "{}",
        report.render()
    );
    use home::core::CandidateStatus;
    let status_of = |kind: CandidateKind| {
        report
            .candidates
            .iter()
            .find(|c| c.candidate.kind == kind)
            .unwrap_or_else(|| panic!("no {kind:?} outcome"))
            .status
    };
    assert_eq!(
        status_of(CandidateKind::PotentialDeadlock),
        CandidateStatus::NotReproduced
    );
    assert_eq!(
        status_of(CandidateKind::UnprotectedMonitoredWrite),
        CandidateStatus::Confirmed
    );
}
