//! Generators for the correct (violation-free) NPB-MZ-style hybrid
//! programs.
//!
//! Structure per time step, mirroring the multi-zone benchmarks: for each
//! directional phase, a parallel region where the master thread exchanges
//! halo data with ring neighbours, an implicit-barrier worksharing loop
//! performs the per-row solves, and (LU only) a critical section
//! accumulates the residual; every few steps the ranks allreduce the
//! residual *outside* the parallel region — which is exactly the call
//! HOME's static filter proves it never needs to instrument.

use crate::params::{Benchmark, Class, SizeParams};
use home_ir::build::{
    assign, compute_rw, if_then, mpi, omp_barrier, omp_critical, omp_for, omp_master, omp_parallel,
    recv, send, seq_for, shared_decl,
};
use home_ir::{BinOp, Expr, IrReduceOp, IrThreadLevel, MpiStmt, Stmt};

/// Tag base for phase `p`'s halo messages.
fn phase_tag(phase: usize) -> i64 {
    10 + phase as i64
}

/// `rank > 0`
fn has_left() -> Expr {
    Expr::bin(BinOp::Gt, Expr::Rank, Expr::int(0))
}

/// `rank < size - 1`
fn has_right() -> Expr {
    Expr::bin(
        BinOp::Lt,
        Expr::Rank,
        Expr::bin(BinOp::Sub, Expr::Size, Expr::int(1)),
    )
}

/// One directional phase: exchange + compute inside a parallel region.
fn phase_region(benchmark: Benchmark, phase: usize, p: &SizeParams) -> Stmt {
    let tag = Expr::int(phase_tag(phase));
    let msg = Expr::int(p.msg_words as i64);
    let left = Expr::bin(BinOp::Sub, Expr::Rank, Expr::int(1));
    let right = Expr::bin(BinOp::Add, Expr::Rank, Expr::int(1));

    let mut region = vec![
        // Halo exchange, funneled through the master thread (the correct
        // hybrid idiom): eager sends both ways, then receives.
        omp_master(vec![
            if_then(
                has_right(),
                vec![send(right.clone(), tag.clone(), msg.clone())],
            ),
            if_then(
                has_left(),
                vec![send(left.clone(), tag.clone(), msg.clone())],
            ),
            if_then(has_left(), vec![recv(left, tag.clone())]),
            if_then(has_right(), vec![recv(right, tag)]),
        ]),
        omp_barrier(),
        // Per-row solves; the worksharing loop carries an implicit barrier.
        // Strong scaling: this rank's share of the global rows.
        omp_for(
            "i",
            Expr::int(0),
            Expr::bin(
                BinOp::Div,
                Expr::bin(
                    BinOp::Sub,
                    Expr::bin(BinOp::Add, Expr::int(p.rows as i64), Expr::Size),
                    Expr::int(1),
                ),
                Expr::Size,
            ),
            vec![compute_rw(
                Expr::int(p.flops_per_row as i64),
                &["u"],
                &["rsd"],
            )],
        ),
    ];

    // LU accumulates the sweep residual under a critical section.
    if benchmark == Benchmark::LuMz && phase == 1 {
        region.push(omp_critical(
            "residual",
            vec![assign(
                "res",
                Expr::bin(BinOp::Add, Expr::var("res"), Expr::int(1)),
            )],
        ));
    }

    omp_parallel(Expr::int(0), region)
}

/// The body of one time step.
fn step_body(benchmark: Benchmark, p: &SizeParams) -> Vec<Stmt> {
    let mut body: Vec<Stmt> = (0..benchmark.phases())
        .map(|ph| phase_region(benchmark, ph, p))
        .collect();
    // Periodic residual allreduce, outside the parallel regions (so the
    // static phase skips it).
    body.push(if_then(
        Expr::bin(
            BinOp::Eq,
            Expr::bin(
                BinOp::Mod,
                Expr::var("step"),
                Expr::int(p.allreduce_every as i64),
            ),
            Expr::int(0),
        ),
        vec![mpi(MpiStmt::Allreduce {
            op: IrReduceOp::Sum,
            count: Expr::int(4),
            comm: None,
        })],
    ));
    body
}

/// Generate the *correct* benchmark body (everything between init and
/// finalize). Exposed separately so the injection layer can splice
/// episodes around it.
pub fn benchmark_body(benchmark: Benchmark, class: Class) -> Vec<Stmt> {
    let p = SizeParams::of(benchmark, class);
    vec![
        shared_decl("res", Expr::int(0)),
        seq_for(
            "step",
            Expr::int(0),
            Expr::int(p.steps as i64),
            step_body(benchmark, &p),
        ),
    ]
}

/// Generate the complete correct program (init → body → finalize).
pub fn generate(benchmark: Benchmark, class: Class) -> home_ir::Program {
    let mut body = vec![mpi(MpiStmt::InitThread {
        required: IrThreadLevel::Multiple,
    })];
    body.extend(benchmark_body(benchmark, class));
    body.push(mpi(MpiStmt::Finalize));
    home_ir::build::finalize(
        &format!(
            "{}_{}",
            benchmark.name().to_lowercase().replace('-', "_"),
            class
        ),
        body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use home_core::{check, CheckOptions};
    use home_static::analyze;

    #[test]
    fn generated_programs_parse_print_roundtrip() {
        for b in Benchmark::ALL {
            let p = generate(b, Class::S);
            let printed = home_ir::print_program(&p);
            let reparsed = home_ir::parse(&printed).expect("generated program must reparse");
            assert_eq!(reparsed.stmt_count(), p.stmt_count(), "{b}");
        }
    }

    #[test]
    fn static_phase_skips_the_sequential_allreduce() {
        let p = generate(Benchmark::BtMz, Class::S);
        let r = analyze(&p);
        // In-region halo calls are instrumented; the step-loop allreduce,
        // init, and finalize are skipped.
        assert!(r.stats.instrumented > 0);
        assert!(r.stats.skipped >= 3, "{:?}", r.stats);
        let allreduce = r
            .checklist
            .sites
            .iter()
            .find(|s| s.name == "mpi_allreduce")
            .expect("allreduce site present");
        assert!(!allreduce.instrument);
    }

    #[test]
    fn correct_benchmarks_are_violation_free() {
        for b in Benchmark::ALL {
            let p = generate(b, Class::S);
            let report = check(&p, &CheckOptions::new(2, 2).with_seeds(vec![1, 2]));
            assert!(report.violations.is_empty(), "{b}: {}", report.render());
            assert!(report.deadlocks.is_empty(), "{b} deadlocked");
        }
    }

    #[test]
    fn lu_has_two_phases_bt_three() {
        let lu = generate(Benchmark::LuMz, Class::S);
        let bt = generate(Benchmark::BtMz, Class::S);
        let count_regions = |p: &home_ir::Program| {
            let mut n = 0;
            p.visit(&mut |s| {
                if matches!(s.kind, home_ir::StmtKind::OmpParallel { .. }) {
                    n += 1;
                }
            });
            n
        };
        assert_eq!(count_regions(&lu), 2);
        assert_eq!(count_regions(&bt), 3);
    }
}
