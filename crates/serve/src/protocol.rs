//! The daemon's JSON line replies: builders (server side) and the parsed
//! form (client side). One JSON object per reply, `ok` first.

use crate::analyze::TraceOutcome;
use crate::server::Fleet;
use serde::Value;

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn render(value: &Value) -> String {
    // The shim's serializer is infallible for `Value` trees.
    serde_json::to_string(value).unwrap_or_else(|_| r#"{"ok":false}"#.to_string())
}

/// `{"ok":false,"error":...}`.
pub fn error_reply(message: &str) -> String {
    render(&obj(vec![
        ("ok", Value::Bool(false)),
        ("error", Value::Str(message.to_string())),
    ]))
}

/// The verdict reply for one submitted trace.
pub fn submit_reply(outcome: &TraceOutcome) -> String {
    let violations = outcome
        .violations
        .iter()
        .map(|v| Value::Str(v.to_string()))
        .collect();
    render(&obj(vec![
        ("ok", Value::Bool(true)),
        ("runs", Value::UInt(outcome.sections.len() as u64)),
        ("events", Value::UInt(outcome.events)),
        ("races", Value::UInt(outcome.races as u64)),
        ("unclassified", Value::UInt(outcome.unclassified as u64)),
        ("violations", Value::Array(violations)),
    ]))
}

/// The `STATUS` fleet report.
pub fn status_reply(fleet: &Fleet, active: usize) -> String {
    let violations = fleet
        .violations()
        .iter()
        .map(|agg| {
            obj(vec![
                ("runs", Value::UInt(agg.runs)),
                (
                    "predicate",
                    Value::Str(agg.violation.kind.predicate().to_string()),
                ),
                ("violation", Value::Str(agg.violation.to_string())),
            ])
        })
        .collect();
    render(&obj(vec![
        ("ok", Value::Bool(true)),
        ("active", Value::UInt(active as u64)),
        ("submissions", Value::UInt(fleet.submissions)),
        ("rejected", Value::UInt(fleet.rejected)),
        ("runs", Value::UInt(fleet.runs)),
        ("skipped_known_runs", Value::UInt(fleet.skipped_known_runs)),
        ("events", Value::UInt(fleet.events)),
        ("races", Value::UInt(fleet.races)),
        ("unclassified", Value::UInt(fleet.unclassified)),
        ("violations", Value::Array(violations)),
    ]))
}

/// A parsed reply line, as the client sees it.
#[derive(Debug, Clone, Default)]
pub struct Reply {
    /// Whether the daemon accepted the request.
    pub ok: bool,
    /// The daemon's error message, when `ok` is false.
    pub error: Option<String>,
    /// Violation lines (`submit` replies; empty otherwise).
    pub violations: Vec<String>,
    /// Runs covered by the reply (`submit`) or ingested so far (`STATUS`).
    pub runs: u64,
    /// The raw JSON line, for `--json` passthrough.
    pub raw: String,
}

fn field<'a>(value: &'a Value, name: &str) -> Option<&'a Value> {
    value
        .as_object()?
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
}

/// Parse one reply line. A malformed line is an error string (a daemon
/// that answers garbage is indistinguishable from no daemon).
pub fn parse_reply(line: &str) -> Result<Reply, String> {
    let value: Value = serde_json::from_str(line.trim())
        .map_err(|e| format!("malformed reply from daemon: {e}"))?;
    let ok = field(&value, "ok")
        .and_then(Value::as_bool)
        .ok_or_else(|| "malformed reply from daemon: missing `ok`".to_string())?;
    let error = field(&value, "error")
        .and_then(Value::as_str)
        .map(str::to_string);
    let violations = field(&value, "violations")
        .and_then(Value::as_array)
        .map(|items| {
            items
                .iter()
                .filter_map(Value::as_str)
                .map(str::to_string)
                .collect()
        })
        .unwrap_or_default();
    let runs = field(&value, "runs").and_then(Value::as_u64).unwrap_or(0);
    Ok(Reply {
        ok,
        error,
        violations,
        runs,
        raw: line.trim().to_string(),
    })
}
