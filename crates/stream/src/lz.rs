//! In-repo frame compression for HBT v2 — an LZ77 byte codec in the style
//! of the LZ4 block format. crates-io is unreachable from this workspace,
//! so the codec is hand-rolled: ~150 lines, no dependencies, tuned for the
//! shape HBT sections actually have (long runs of near-identical
//! monitored-write/event records, exactly the "order records compress
//! extremely well" observation the record-and-replay literature makes).
//!
//! ## Block format
//!
//! A compressed block is a sequence of *sequences*:
//!
//! ```text
//! sequence := token(u8) [lit_ext...] literals [offset(varint) [match_ext...]]
//! token    := literal_len(hi nibble) | match_len-4(lo nibble)
//! ```
//!
//! A nibble of 15 is extended by following bytes (each adds 0..=255,
//! terminated by a byte < 255). Matches copy `match_len` bytes from
//! `offset` bytes back in the output. The offset is an LEB128 varint —
//! record streams repeat with short periods, so most offsets fit one
//! byte — and the reserved value `0` means "same offset as the previous
//! match" (periodic records reuse one stride over and over). The final
//! sequence carries literals only and ends at the end of input.
//!
//! ## Safety against hostile input
//!
//! [`decompress`] takes the *expected* uncompressed length and treats it
//! as a hard output bound: the output buffer grows only as bytes are
//! actually produced (no attacker-sized pre-allocation), every offset is
//! validated against the bytes already produced, and a block that tries to
//! produce more or fewer bytes than declared is a typed [`LzError`] —
//! never a panic, never an OOM.

/// Minimum match length the compressor emits (and the decoder's bias on
/// the match-length nibble).
const MIN_MATCH: usize = 4;

/// Match-window bound the compressor respects (the decoder accepts any
/// offset the produced output can satisfy).
const MAX_OFFSET: usize = 65_535;

/// log2 of the compressor's hash-table size (64 Ki entries, 256 KiB).
const HASH_BITS: u32 = 16;

/// A typed decompression failure; the caller maps it into its own error
/// taxonomy (HBT wraps it into `HomeError::CorruptTrace`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LzError {
    /// The block ended mid-sequence.
    Truncated {
        /// Byte offset into the compressed block.
        at: usize,
    },
    /// A match offset points before the start of the output.
    BadOffset {
        /// Byte offset into the compressed block.
        at: usize,
        /// The offending back-reference distance.
        offset: usize,
    },
    /// The block decompressed to a different length than declared.
    LengthMismatch {
        /// Declared uncompressed length.
        expected: usize,
        /// Length actually produced (saturated at `expected` when the
        /// block tried to overrun).
        produced: usize,
    },
}

impl std::fmt::Display for LzError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LzError::Truncated { at } => {
                write!(f, "truncated LZ block at compressed byte {at}")
            }
            LzError::BadOffset { at, offset } => {
                write!(
                    f,
                    "LZ match offset {offset} reaches before the output start at compressed byte {at}"
                )
            }
            LzError::LengthMismatch { expected, produced } => {
                write!(
                    f,
                    "LZ block declares {expected} uncompressed byte(s) but produces {produced}"
                )
            }
        }
    }
}

#[inline]
fn hash4(bytes: &[u8]) -> usize {
    // Fibonacci hashing over the 4-byte little-endian prefix.
    let v = u32::from(bytes[0])
        | u32::from(bytes[1]) << 8
        | u32::from(bytes[2]) << 16
        | u32::from(bytes[3]) << 24;
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

fn push_len(out: &mut Vec<u8>, mut extra: usize) {
    while extra >= 255 {
        out.push(255);
        extra -= 255;
    }
    out.push(extra as u8);
}

fn push_varint(out: &mut Vec<u8>, mut v: usize) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            break;
        }
        out.push(b | 0x80);
    }
}

/// Emit one sequence. `last_off` is the previous match's offset; a match
/// reusing it is encoded as the one-byte rep code `0`.
fn emit_sequence(
    out: &mut Vec<u8>,
    literals: &[u8],
    m: Option<(usize, usize)>,
    last_off: &mut usize,
) {
    let lit_nibble = literals.len().min(15);
    let (off, mlen) = m.unwrap_or((0, MIN_MATCH));
    let match_nibble = (mlen - MIN_MATCH).min(15);
    out.push(((lit_nibble as u8) << 4) | match_nibble as u8);
    if lit_nibble == 15 {
        push_len(out, literals.len() - 15);
    }
    out.extend_from_slice(literals);
    if m.is_some() {
        if off == *last_off {
            out.push(0);
        } else {
            push_varint(out, off);
            *last_off = off;
        }
        if match_nibble == 15 {
            push_len(out, mlen - MIN_MATCH - 15);
        }
    }
}

/// How many recent candidate positions each hash bucket retains.
const CHAIN_DEPTH: usize = 4;

/// The `CHAIN_DEPTH` most recent candidate positions for each hash
/// bucket, newest first. Entries store position + 1; 0 means empty.
struct MatchTable {
    slots: Vec<[u32; CHAIN_DEPTH]>,
}

impl MatchTable {
    fn new() -> MatchTable {
        MatchTable {
            slots: vec![[0u32; CHAIN_DEPTH]; 1 << HASH_BITS],
        }
    }

    fn insert(&mut self, input: &[u8], i: usize) {
        let bucket = &mut self.slots[hash4(&input[i..])];
        bucket.rotate_right(1);
        bucket[0] = (i + 1) as u32;
    }

    /// Longest match for position `i` among the bucket's candidates plus
    /// the repeat-offset candidate at distance `rep`: `(candidate
    /// position, match length)`. Ties prefer the rep candidate (its
    /// offset encodes in one byte).
    fn probe(&self, input: &[u8], i: usize, rep: usize) -> Option<(usize, usize)> {
        let h = hash4(&input[i..]);
        let mut best: Option<(usize, usize)> = None;
        let rep_cand = (rep > 0 && rep <= i).then(|| (i - rep + 1) as u32);
        for slot in self.slots[h].into_iter().chain(rep_cand) {
            if slot == 0 {
                continue;
            }
            let cand = slot as usize - 1;
            let dist = i - cand;
            if !(1..=MAX_OFFSET).contains(&dist) {
                continue;
            }
            if input[cand..cand + MIN_MATCH] != input[i..i + MIN_MATCH] {
                continue;
            }
            let mut mlen = MIN_MATCH;
            while i + mlen < input.len() && input[cand + mlen] == input[i + mlen] {
                mlen += 1;
            }
            let better = match best {
                None => true,
                Some((_, blen)) => mlen > blen || (mlen == blen && dist == rep),
            };
            if better {
                best = Some((cand, mlen));
            }
        }
        best
    }
}

/// Compress `input` into a fresh block. Always succeeds; the output is at
/// worst slightly larger than the input (incompressible data costs one
/// token byte per 15 literals). Deterministic: the same input always
/// yields the same block.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    let mut table = MatchTable::new();
    let mut anchor = 0usize;
    let mut i = 0usize;
    let mut last_off = 0usize;
    while i + MIN_MATCH <= input.len() {
        let found = table.probe(input, i, last_off);
        table.insert(input, i);
        let Some((cand, mlen)) = found else {
            i += 1;
            continue;
        };
        let (mut cand, mut mlen, mut at) = (cand, mlen, i);
        // One-step lazy matching: when the very next position starts a
        // strictly better match, ship this byte as a literal and take the
        // longer match instead (the classic gain on record streams whose
        // period is off-by-one from the hash stride).
        if at + 1 + MIN_MATCH <= input.len() {
            if let Some((cand2, mlen2)) = table.probe(input, at + 1, last_off) {
                if mlen2 > mlen + 1 {
                    table.insert(input, at + 1);
                    (cand, mlen, at) = (cand2, mlen2, at + 1);
                }
            }
        }
        // Extend the match backwards into the pending literals: bytes just
        // before the match start often repeat too, and a match byte is
        // cheaper than a literal byte.
        while at > anchor && cand > 0 && input[cand - 1] == input[at - 1] {
            at -= 1;
            cand -= 1;
            mlen += 1;
        }
        let dist = at - cand;
        emit_sequence(
            &mut out,
            &input[anchor..at],
            Some((dist, mlen)),
            &mut last_off,
        );
        // Index the whole match interior so later positions can reach
        // candidates inside it — record streams repeat with periods that
        // rarely line up with match boundaries.
        let end = at + mlen;
        let mut j = at + 1;
        while j + MIN_MATCH <= end.min(input.len()) {
            table.insert(input, j);
            j += 1;
        }
        i = end;
        anchor = i;
    }
    emit_sequence(&mut out, &input[anchor..], None, &mut last_off);
    out
}

fn read_ext(input: &[u8], pos: &mut usize, base: usize) -> Result<usize, LzError> {
    let mut extra = 0usize;
    loop {
        let b = *input.get(*pos).ok_or(LzError::Truncated { at: *pos })?;
        *pos += 1;
        extra += b as usize;
        if b < 255 {
            return Ok(base + extra);
        }
    }
}

/// Read an LEB128 offset varint. Hostile blocks can stuff continuation
/// bits forever; anything wider than 28 bits is corrupt (no real offset
/// gets near it — frames cap raw size at well under 2^28).
fn read_offset(input: &[u8], pos: &mut usize) -> Result<usize, LzError> {
    let start = *pos;
    let mut v = 0usize;
    let mut shift = 0u32;
    loop {
        let b = *input.get(*pos).ok_or(LzError::Truncated { at: *pos })?;
        *pos += 1;
        v |= usize::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift >= 28 {
            return Err(LzError::BadOffset {
                at: start,
                offset: v,
            });
        }
    }
}

/// Decompress a block produced by [`compress`] (or by an attacker).
/// `expected_len` is the declared uncompressed length and acts as a hard
/// bound on both allocation and output; any disagreement between the block
/// and the declaration is a typed error.
pub fn decompress(input: &[u8], expected_len: usize) -> Result<Vec<u8>, LzError> {
    let mut out = Vec::new();
    decompress_into(input, expected_len, &mut out)?;
    Ok(out)
}

/// [`decompress`] into a caller-owned buffer: `out` is cleared and
/// refilled, retaining its capacity — the frame-batch decode path reuses
/// one buffer across every frame it inflates instead of allocating a
/// fresh `Vec` per frame.
pub fn decompress_into(
    input: &[u8],
    expected_len: usize,
    out: &mut Vec<u8>,
) -> Result<(), LzError> {
    out.clear();
    // Grow-as-produced: reserve at most 1 MiB up front so a lying
    // `expected_len` cannot force a giant allocation before the block's
    // own bytes justify it.
    out.reserve(expected_len.min(1 << 20).saturating_sub(out.capacity()));
    let mut pos = 0usize;
    let mut last_offset = 0usize;
    loop {
        if pos == input.len() {
            break;
        }
        let token = input[pos];
        pos += 1;
        let mut lit_len = usize::from(token >> 4);
        if lit_len == 15 {
            lit_len = read_ext(input, &mut pos, 15)?;
        }
        let lit_end = pos
            .checked_add(lit_len)
            .filter(|&e| e <= input.len())
            .ok_or(LzError::Truncated { at: pos })?;
        if out.len() + lit_len > expected_len {
            return Err(LzError::LengthMismatch {
                expected: expected_len,
                produced: expected_len,
            });
        }
        out.extend_from_slice(&input[pos..lit_end]);
        pos = lit_end;
        if pos == input.len() {
            // Final sequence: literals only.
            break;
        }
        let off_at = pos;
        let mut offset = read_offset(input, &mut pos)?;
        if offset == 0 {
            // Rep code: reuse the previous match's offset.
            offset = last_offset;
        } else {
            last_offset = offset;
        }
        if offset == 0 || offset > out.len() {
            return Err(LzError::BadOffset { at: off_at, offset });
        }
        let mut match_len = usize::from(token & 0x0f) + MIN_MATCH;
        if match_len == 15 + MIN_MATCH {
            match_len = read_ext(input, &mut pos, match_len)?;
        }
        if out.len() + match_len > expected_len {
            return Err(LzError::LengthMismatch {
                expected: expected_len,
                produced: expected_len,
            });
        }
        let start = out.len() - offset;
        if match_len <= offset {
            // Non-overlapping copy: one bounds check, then memcpy-speed.
            out.extend_from_within(start..start + match_len);
        } else {
            // Overlapping run (offset < length): byte-by-byte replication.
            for k in 0..match_len {
                let b = out[start + k];
                out.push(b);
            }
        }
    }
    if out.len() != expected_len {
        return Err(LzError::LengthMismatch {
            expected: expected_len,
            produced: out.len(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let packed = compress(data);
        let unpacked = decompress(&packed, data.len()).expect("roundtrip decodes");
        assert_eq!(unpacked, data, "roundtrip of {} bytes", data.len());
    }

    #[test]
    fn roundtrip_edge_shapes() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"abc");
        roundtrip(b"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa");
        roundtrip(
            "the quick brown fox jumps over the lazy dog. "
                .repeat(40)
                .as_bytes(),
        );
        let mut ramp: Vec<u8> = (0u32..10_000).map(|i| (i * 31 % 251) as u8).collect();
        roundtrip(&ramp);
        ramp.extend(std::iter::repeat_n(7u8, 100_000));
        roundtrip(&ramp);
    }

    #[test]
    fn repetitive_input_compresses_well() {
        let data = b"MONITORED_WRITE rank=0 tid=1 var=Src call=Recv ".repeat(1000);
        let packed = compress(&data);
        assert!(
            packed.len() * 4 < data.len(),
            "repetitive input must compress at least 4x: {} -> {}",
            data.len(),
            packed.len()
        );
    }

    #[test]
    fn seeded_random_roundtrips() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0x17A5_0000);
        for case in 0..50 {
            let len = rng.gen_range(0u64..20_000) as usize;
            // Mix of random bytes and copied earlier windows, to exercise
            // both literal and match paths.
            let mut data = Vec::with_capacity(len);
            while data.len() < len {
                if !data.is_empty() && rng.gen_bool(0.5) {
                    let take = rng.gen_range(1u64..200) as usize;
                    let from = rng.gen_range(0u64..data.len() as u64) as usize;
                    for k in 0..take.min(len - data.len()) {
                        let b = data[(from + k) % data.len()];
                        data.push(b);
                    }
                } else {
                    data.push(rng.gen_range(0u64..256) as u8);
                }
            }
            let packed = compress(&data);
            let unpacked =
                decompress(&packed, data.len()).unwrap_or_else(|e| panic!("case {case}: {e}"));
            assert_eq!(unpacked, data, "case {case}");
        }
    }

    #[test]
    fn hostile_blocks_are_typed_errors() {
        // Declared length larger than the block produces.
        let packed = compress(b"hello world hello world");
        assert!(matches!(
            decompress(&packed, 1000),
            Err(LzError::LengthMismatch { .. })
        ));
        // Declared length smaller than the block produces.
        assert!(matches!(
            decompress(&packed, 3),
            Err(LzError::LengthMismatch { .. })
        ));
        // Offset beyond the produced output.
        let bad = vec![0x01u8, b'x', 0xFF, 0x7F, 0x00];
        assert!(matches!(
            decompress(&bad, 100),
            Err(LzError::BadOffset { .. })
        ));
        // Rep code (offset 0) with no previous match to repeat.
        let bad = vec![0x10u8, b'x', 0x00];
        assert!(matches!(
            decompress(&bad, 100),
            Err(LzError::BadOffset { offset: 0, .. })
        ));
        // An offset varint stuffed with continuation bits forever.
        let bad = vec![0x10u8, b'x', 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF];
        assert!(matches!(
            decompress(&bad, 100),
            Err(LzError::BadOffset { .. })
        ));
        // Truncation at every byte of a valid block never panics.
        let data = b"abcabcabcabcabcabc-abcabcabc".repeat(8);
        let packed = compress(&data);
        for cut in 0..packed.len() {
            let _ = decompress(&packed[..cut], data.len());
        }
    }

    #[test]
    fn lying_expected_len_does_not_preallocate() {
        // A 5-byte hostile block declaring usize::MAX/2 output must fail
        // with a typed error, not attempt the allocation.
        let bad = vec![0x10u8, b'x', 0x01, 0x00, 0x00];
        let err = decompress(&bad, usize::MAX / 2).expect_err("must fail");
        assert!(matches!(err, LzError::LengthMismatch { .. }), "{err:?}");
    }
}
