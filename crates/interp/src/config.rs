//! Run configuration: scheduling, network model, and instrumentation scope.

use home_mpi::MpiConfig;
use home_omp::OmpCosts;
use home_sched::{SchedConfig, SimTime};
use home_static::Checklist;
use home_trace::EventFilter;
use std::sync::Arc;

/// What a checking tool instruments, and what each observation costs.
/// The four paper configurations are provided as constructors; the
/// baselines crate tweaks them further.
#[derive(Debug, Clone)]
pub struct Instrumentation {
    /// Tool label (shows up in reports and benchmark tables).
    pub name: String,
    /// Which event classes get recorded.
    pub filter: EventFilter,
    /// Gate MPI-call wrapping on the static checklist (HOME's selective
    /// instrumentation). When `false`, every MPI call is wrapped.
    pub selective: bool,
    /// Whether `MPI_Probe`/`MPI_Iprobe` calls are wrapped at all (Intel
    /// Thread Checker does not monitor probe arguments — the paper's source
    /// of its LU false negatives).
    pub wrap_probe: bool,
    /// Virtual-time cost of recording one event (binary instrumentation is
    /// much more expensive than a wrapper store).
    pub event_cost: SimTime,
    /// Extra virtual-time cost charged on *every* MPI call (Marmot's
    /// round-trip to its central debug process).
    pub mpi_call_extra: SimTime,
    /// Multiplier on compute virtual time, modelling whole-process binary
    /// instrumentation slowdown (Pin-style JIT for HOME/ITC; 1.0 = none).
    pub compute_slowdown: f64,
}

impl Instrumentation {
    /// No tool attached: nothing recorded, nothing charged.
    pub fn base() -> Self {
        Instrumentation {
            name: "base".into(),
            filter: EventFilter::NONE,
            selective: true,
            wrap_probe: true,
            event_cost: SimTime::ZERO,
            mpi_call_extra: SimTime::ZERO,
            compute_slowdown: 1.0,
        }
    }

    /// HOME: monitored variables + sync events, only at checklist-selected
    /// call sites, cheap wrapper stores, and a modest whole-process
    /// slowdown from the selective binary instrumentation.
    pub fn home() -> Self {
        Instrumentation {
            name: "home".into(),
            filter: EventFilter::MONITORED_AND_SYNC,
            selective: true,
            wrap_probe: true,
            event_cost: SimTime::from_micros(33),
            mpi_call_extra: SimTime::ZERO,
            compute_slowdown: 1.15,
        }
    }

    /// HOME with the static filter disabled (ablation: every MPI call
    /// wrapped regardless of region).
    pub fn home_unselective() -> Self {
        Instrumentation {
            name: "home-unselective".into(),
            selective: false,
            ..Instrumentation::home()
        }
    }

    /// Record everything (used by tests that want full traces).
    pub fn full() -> Self {
        Instrumentation {
            name: "full".into(),
            filter: EventFilter::ALL,
            selective: false,
            wrap_probe: true,
            event_cost: SimTime::ZERO,
            mpi_call_extra: SimTime::ZERO,
            compute_slowdown: 1.0,
        }
    }
}

/// Full configuration of one simulated run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Number of MPI processes.
    pub nprocs: usize,
    /// OpenMP threads per process (the `omp parallel` default team size
    /// when the program says `num_threads(nthreads)`; explicit counts in
    /// the program win).
    pub threads_per_proc: usize,
    /// Scheduler configuration (seed controls the interleaving).
    pub sched: SchedConfig,
    /// Network/virtual-time model.
    pub mpi: MpiConfig,
    /// OpenMP construct costs.
    pub omp_costs: OmpCosts,
    /// Tool instrumentation.
    pub instrumentation: Instrumentation,
    /// Static checklist driving selective instrumentation (required when
    /// `instrumentation.selective`; typically `home_static::analyze`'s
    /// output).
    pub checklist: Option<Arc<Checklist>>,
    /// Virtual nanoseconds charged per `compute` flop.
    pub ns_per_flop: f64,
    /// Cap on *actual* floating-point work done per `compute` statement
    /// (keeps wall-clock reasonable while still exercising real FP code).
    pub real_flops_cap: u64,
}

impl RunConfig {
    /// A small deterministic test configuration.
    pub fn test(nprocs: usize, seed: u64) -> Self {
        RunConfig {
            nprocs,
            threads_per_proc: 2,
            sched: SchedConfig::deterministic(seed),
            mpi: MpiConfig::test(),
            omp_costs: OmpCosts::zero(),
            instrumentation: Instrumentation::full(),
            checklist: None,
            ns_per_flop: 1.0,
            real_flops_cap: 1_000,
        }
    }

    /// The benchmark configuration: time-faithful scheduling and the
    /// cluster network model.
    pub fn cluster(nprocs: usize, seed: u64) -> Self {
        RunConfig {
            nprocs,
            threads_per_proc: 2,
            sched: SchedConfig::time_faithful(seed),
            mpi: MpiConfig::cluster(),
            omp_costs: OmpCosts::default_costs(),
            instrumentation: Instrumentation::base(),
            checklist: None,
            ns_per_flop: 0.5,
            real_flops_cap: 2_000,
        }
    }

    /// Replace the instrumentation.
    pub fn with_instrumentation(mut self, instr: Instrumentation) -> Self {
        self.instrumentation = instr;
        self
    }

    /// Attach a static checklist.
    pub fn with_checklist(mut self, checklist: Arc<Checklist>) -> Self {
        self.checklist = Some(checklist);
        self
    }

    /// Replace the seed (keeps the scheduling mode/policy).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.sched.seed = seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tool_presets_differ_as_expected() {
        let base = Instrumentation::base();
        let home = Instrumentation::home();
        assert_eq!(base.filter, EventFilter::NONE);
        assert!(home.filter.monitored && home.filter.sync && !home.filter.accesses);
        assert!(home.selective);
        assert!(!Instrumentation::home_unselective().selective);
    }

    #[test]
    fn builders() {
        let cfg = RunConfig::test(4, 7)
            .with_instrumentation(Instrumentation::home())
            .with_seed(9);
        assert_eq!(cfg.nprocs, 4);
        assert_eq!(cfg.sched.seed, 9);
        assert_eq!(cfg.instrumentation.name, "home");
    }
}
