//! Scheduling policies for deterministic mode.

use crate::clock::SimTime;
use crate::vtid::Vtid;
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// Policy deciding which runnable virtual thread runs next at a yield point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Uniform seeded random choice among runnable threads. Good default for
    /// exploring interleavings reproducibly.
    Random,
    /// Cycle through runnable threads in id order.
    RoundRobin,
    /// Always pick the runnable thread with the smallest virtual clock.
    /// Ties broken by thread id. This yields a *time-faithful* serialization
    /// used by the virtual-time benchmarks.
    EarliestClockFirst,
    /// PCT-style priority scheduling: every thread draws a random priority
    /// at spawn (or takes a pinned one from
    /// [`crate::SchedConfig::priority_pins`]), the highest-priority runnable
    /// thread always runs, and `depth` priority-change points — scheduling
    /// steps drawn from the seed — demote the would-be winner below every
    /// other thread. One `(seed, depth)` pair names one schedule, so a
    /// priority schedule is a reproducible exploration token.
    Priority {
        /// Number of priority-change points (PCT's `d`). `0` = a pure
        /// fixed-priority schedule, which is what directed rescheduling
        /// pins use.
        depth: u8,
    },
}

impl SchedPolicy {
    /// Choose the next thread among `runnable` (non-empty), given each
    /// thread's current virtual clock, priority, and the id of the last
    /// thread that ran.
    pub(crate) fn choose(
        self,
        runnable: &[Vtid],
        clock_of: impl Fn(Vtid) -> SimTime,
        priority_of: impl Fn(Vtid) -> i64,
        last: Option<Vtid>,
        rng: &mut ChaCha8Rng,
    ) -> Vtid {
        debug_assert!(!runnable.is_empty());
        match self {
            SchedPolicy::Random => runnable[rng.gen_range(0..runnable.len())],
            SchedPolicy::Priority { .. } => {
                // Highest priority wins; ties break toward the smaller
                // thread id so the schedule is a total function of the
                // priority assignment.
                let mut best = runnable[0];
                let mut best_prio = priority_of(best);
                for &v in &runnable[1..] {
                    let p = priority_of(v);
                    if p > best_prio || (p == best_prio && v < best) {
                        best = v;
                        best_prio = p;
                    }
                }
                best
            }
            SchedPolicy::RoundRobin => {
                // Smallest id strictly greater than `last`, wrapping.
                let mut sorted: Vec<Vtid> = runnable.to_vec();
                sorted.sort_unstable();
                match last {
                    Some(l) => sorted.iter().copied().find(|&v| v > l).unwrap_or(sorted[0]),
                    None => sorted[0],
                }
            }
            SchedPolicy::EarliestClockFirst => {
                let mut best = runnable[0];
                let mut best_clock = clock_of(best);
                for &v in &runnable[1..] {
                    let c = clock_of(v);
                    if c < best_clock || (c == best_clock && v < best) {
                        best = v;
                        best_clock = c;
                    }
                }
                best
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn vt(i: usize) -> Vtid {
        Vtid::from_index(i)
    }

    fn no_prio(_v: Vtid) -> i64 {
        0
    }

    #[test]
    fn round_robin_cycles() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let runnable = vec![vt(0), vt(1), vt(2)];
        let clock = |_v: Vtid| SimTime::ZERO;
        let p = SchedPolicy::RoundRobin;
        assert_eq!(p.choose(&runnable, clock, no_prio, None, &mut rng), vt(0));
        assert_eq!(
            p.choose(&runnable, clock, no_prio, Some(vt(0)), &mut rng),
            vt(1)
        );
        assert_eq!(
            p.choose(&runnable, clock, no_prio, Some(vt(2)), &mut rng),
            vt(0)
        );
    }

    #[test]
    fn round_robin_skips_missing() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let runnable = vec![vt(0), vt(2)];
        let clock = |_v: Vtid| SimTime::ZERO;
        assert_eq!(
            SchedPolicy::RoundRobin.choose(&runnable, clock, no_prio, Some(vt(0)), &mut rng),
            vt(2)
        );
    }

    #[test]
    fn earliest_clock_first_picks_min() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let runnable = vec![vt(0), vt(1), vt(2)];
        let clock = |v: Vtid| SimTime::from_nanos([50, 10, 30][v.index()]);
        assert_eq!(
            SchedPolicy::EarliestClockFirst.choose(&runnable, clock, no_prio, None, &mut rng),
            vt(1)
        );
    }

    #[test]
    fn earliest_clock_ties_break_by_id() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let runnable = vec![vt(2), vt(1)];
        let clock = |_v: Vtid| SimTime::from_nanos(5);
        assert_eq!(
            SchedPolicy::EarliestClockFirst.choose(&runnable, clock, no_prio, None, &mut rng),
            vt(1)
        );
    }

    #[test]
    fn random_is_reproducible() {
        let runnable = vec![vt(0), vt(1), vt(2), vt(3)];
        let clock = |_v: Vtid| SimTime::ZERO;
        let seq = |seed: u64| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            (0..16)
                .map(|_| SchedPolicy::Random.choose(&runnable, clock, no_prio, None, &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(seq(7), seq(7));
        assert_ne!(
            seq(7),
            seq(8),
            "different seeds should differ (very likely)"
        );
    }

    #[test]
    fn priority_picks_max_and_breaks_ties_by_id() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let runnable = vec![vt(0), vt(1), vt(2)];
        let clock = |_v: Vtid| SimTime::ZERO;
        let prio = |v: Vtid| [10i64, 30, 20][v.index()];
        assert_eq!(
            SchedPolicy::Priority { depth: 0 }.choose(&runnable, clock, prio, None, &mut rng),
            vt(1)
        );
        let tied = |_v: Vtid| 5i64;
        assert_eq!(
            SchedPolicy::Priority { depth: 3 }.choose(&[vt(2), vt(1)], clock, tied, None, &mut rng),
            vt(1)
        );
    }
}
