//! HBT — the HOME Binary Trace format.
//!
//! A compact, streamable encoding of [`Event`] traces:
//!
//! ```text
//! header  := magic(0x89 'H' 'B' 'T') version(u8 = 1 | 2)
//! record  := varint(len) payload[len]        -- len > 0
//! end     := varint(0)                        -- explicit end marker
//! payload := kind(u8) body
//!   kind 1 RUN      body = varint(seed)       -- starts a new trace section
//!   kind 2 EVENT    body = encoded Event
//!   kind 3 INCIDENT body = varint(rank) varint(line) string(call) string(error)
//!   kind 4 MANIFEST body = varint(nsections) (flag(u8) [varint(seed)])*
//!   kind 5 FRAME    body = flags(u8) [varint(seed)] varint(events)
//!                          varint(incidents) varint(raw_len) stored...   (v2)
//!   kind 6 INDEX    body = varint(nframes) (flags(u8) [varint(seed)]
//!                          varint(offset) varint(events) varint(raw_len))*  (v2)
//! ```
//!
//! ## Version 2: compressed frames and the seek index
//!
//! A v2 stream packs each trace section into one or more `FRAME` records:
//! the section's `EVENT`/`INCIDENT` records are length-prefix-encoded
//! exactly as in v1, concatenated, and (when it pays) compressed with the
//! in-repo [`lz`](crate::lz) codec. The frame header carries the section
//! seed (first frame only; later frames of a long section set the
//! *continuation* flag), the record counts, and the uncompressed length —
//! all stored uncompressed, so a consumer can walk frame headers without
//! inflating anything. Before the closing `MANIFEST`, the writer emits an
//! `INDEX` record listing every frame's absolute byte offset, seed, event
//! count, and uncompressed length: `replay`/`analyze` use it to seek
//! straight to a run and to decode frames in parallel. Readers validate
//! the index against the frames they actually saw — a lying offset, seed,
//! count, or length is a typed [`HomeError::CorruptTrace`], and a
//! frame-bearing stream that ends without an index is rejected the same
//! way a `RUN`-bearing stream without a manifest is.
//!
//! Both readers accept v1 and v2 streams transparently: frames are
//! inflated internally and yielded as the equivalent `RUN`/`EVENT`/
//! `INCIDENT` records, so every consumer of [`HbtRecord`] handles both
//! versions unchanged. v2-only record kinds inside a v1 stream are a
//! typed error, never a misparse.
//!
//! Integers are LEB128 varints; signed values are zigzag-encoded; strings
//! are varint-length-prefixed UTF-8. The explicit end marker means a stream
//! truncated at *any* byte is detectable: decoding yields a typed
//! [`HomeError::TraceParse`]/[`HomeError::CorruptTrace`] with the byte
//! offset, never a panic and never a silently short trace.
//!
//! The MANIFEST record is the writer's closing statement: the last record
//! before the end marker, declaring how many sections the stream contains
//! and which seed opened each. A trace truncated at a *section boundary*
//! and patched with a forged end marker parses record-by-record, but its
//! section list no longer matches the manifest — [`decode_sections`] (and
//! every consumer driving [`ManifestCheck`]) rejects it as
//! [`HomeError::CorruptTrace`] instead of silently reporting a shorter,
//! "valid" run. Streams carrying RUN records **must** end with a manifest;
//! anonymous single-section streams (raw event feeds) may omit it.
//!
//! Hostile inputs are bounded everywhere a length prefix is read: record
//! payloads are read in fixed-size chunks (a lying length hits the real
//! end of input after at most one chunk instead of pre-allocating the
//! claimed size), record lengths are capped by [`MAX_RECORD_LEN`], and
//! string/manifest element counts are validated against the bytes actually
//! present in the enclosing record before any allocation.
//!
//! Readers and writers operate over [`io::Read`]/[`io::Write`] and never
//! require the whole stream in memory.

use crate::lz;
use home_trace::{
    AccessKind, BarrierId, CommId, Event, EventKind, HomeError, LockId, MemLoc, MonitoredVar,
    MpiCallKind, MpiCallRecord, Rank, RegionId, ReqId, SrcLoc, ThreadLevel, Tid, Trace, VarId,
};
use std::collections::VecDeque;
use std::io::{self, Read, Write};

/// The four magic bytes opening every HBT stream.
pub const HBT_MAGIC: [u8; 4] = [0x89, b'H', b'B', b'T'];

/// Version byte of classic uncompressed streams (one record per event).
pub const HBT_VERSION: u8 = 1;

/// Version byte of compressed, seek-indexed streams (`record --compress`).
pub const HBT_V2: u8 = 2;

/// Hard ceiling on a single record's payload, to reject corrupt lengths
/// before attempting a giant allocation.
pub const MAX_RECORD_LEN: u64 = 1 << 28;

/// Streaming payload reads happen in chunks of this size, so a record
/// length that lies about the remaining input allocates at most one chunk
/// before the truncation is detected.
const READ_CHUNK: usize = 64 * 1024;

const REC_RUN: u8 = 1;
const REC_EVENT: u8 = 2;
const REC_INCIDENT: u8 = 3;
const REC_MANIFEST: u8 = 4;
const REC_FRAME: u8 = 5;
const REC_INDEX: u8 = 6;

/// Frame flag bits (see the module docs for the v2 frame layout).
const FRAME_HAS_SEED: u8 = 1;
const FRAME_COMPRESSED: u8 = 2;
const FRAME_CONTINUATION: u8 = 4;

/// A v2 writer flushes the current section into a frame once this many
/// uncompressed bytes have accumulated, so giant sections split into
/// bounded, independently decodable (and parallelizable) frames.
const FRAME_TARGET: usize = 256 * 1024;

/// Does `bytes` start with the HBT magic? Used by the CLI to auto-detect
/// HBT vs JSON input.
pub fn is_hbt(bytes: &[u8]) -> bool {
    bytes.len() >= HBT_MAGIC.len() && bytes[..HBT_MAGIC.len()] == HBT_MAGIC
}

/// A non-fatal MPI misuse incident carried alongside a recorded trace, so
/// `home replay` can reproduce incident-based violations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceIncident {
    /// Rank the incident occurred on.
    pub rank: u32,
    /// Source line of the offending call (0 when unknown).
    pub line: u32,
    /// MPI function name.
    pub call: String,
    /// Human-readable description.
    pub error: String,
}

/// One decoded HBT record.
#[derive(Debug, Clone, PartialEq)]
pub enum HbtRecord {
    /// Starts a new trace section recorded under `seed`.
    Run {
        /// Scheduler seed of the section that follows.
        seed: u64,
    },
    /// One runtime event.
    Event(Event),
    /// One runtime incident of the current section.
    Incident(TraceIncident),
    /// The writer's closing declaration of the stream's sections: one
    /// entry per section, `Some(seed)` for `RUN`-opened sections, `None`
    /// for the implicit anonymous section. Must be the last record.
    Manifest {
        /// Declared sections, in stream order.
        sections: Vec<Option<u64>>,
    },
    /// The v2 seek index: one entry per compressed frame, in stream order.
    /// Emitted by the writer immediately before the manifest; readers
    /// validate it against the frames actually observed.
    Index {
        /// Declared frames, in stream order.
        entries: Vec<IndexEntry>,
    },
}

/// One entry of the v2 seek index: where a frame starts and what it holds.
/// A reader can seek to `offset` and decode that frame without touching
/// any other byte of the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexEntry {
    /// Absolute byte offset of the frame record (its length varint).
    pub offset: u64,
    /// Section seed, for the first frame of a `RUN`-recorded section.
    pub seed: Option<u64>,
    /// True when the frame continues the previous frame's section.
    pub continuation: bool,
    /// Events stored in the frame.
    pub events: u64,
    /// Incidents stored in the frame.
    pub incidents: u64,
    /// Uncompressed length of the frame's record bytes.
    pub raw_len: u64,
}

/// Validates a stream of decoded records against its trailing manifest.
///
/// Drive it with every record a reader yields (plus the reader's offset
/// *after* decoding that record) and call [`ManifestCheck::finish`] at the
/// end marker. It enforces three properties:
///
/// 1. the manifest, when present, is the final record;
/// 2. the declared section count and per-section seeds match the sections
///    actually observed;
/// 3. any stream containing `RUN` records ends with a manifest at all — a
///    multi-run recording truncated at a section boundary (and patched
///    with a forged end marker) is rejected, never silently shortened.
///
/// [`decode_sections`] uses it internally; incremental consumers (the
/// `home serve` ingest loop) drive it alongside their own per-section
/// processing.
#[derive(Debug, Default)]
pub struct ManifestCheck {
    observed: Vec<Option<u64>>,
    open: bool,
    manifest: Option<Vec<Option<u64>>>,
}

impl ManifestCheck {
    /// A fresh validator.
    pub fn new() -> ManifestCheck {
        ManifestCheck::default()
    }

    /// Observe one decoded record. `offset` is the reader's byte offset
    /// after the record, used in diagnostics.
    pub fn on_record(&mut self, record: &HbtRecord, offset: u64) -> Result<(), HomeError> {
        if self.manifest.is_some() {
            return Err(HomeError::corrupt_trace(format!(
                "HBT record after the section manifest at byte {offset}"
            )));
        }
        match record {
            HbtRecord::Run { seed } => {
                self.observed.push(Some(*seed));
                self.open = true;
            }
            HbtRecord::Event(_) | HbtRecord::Incident(_) => {
                if !self.open {
                    self.observed.push(None);
                    self.open = true;
                }
            }
            HbtRecord::Manifest { sections } => {
                self.manifest = Some(sections.clone());
            }
            // The seek index is validated inside the readers (against the
            // frames actually seen); for sectioning it is a no-op, but the
            // record-after-manifest rule above still covers it.
            HbtRecord::Index { .. } => {}
        }
        Ok(())
    }

    /// Observe one section directly — used by the v2 layout scanner,
    /// which sees frame headers rather than individual records.
    fn note_section(&mut self, seed: Option<u64>) {
        self.observed.push(seed);
        self.open = true;
    }

    /// Validate at the end marker. `offset` is the reader's final byte
    /// offset, used in diagnostics.
    pub fn finish(&self, offset: u64) -> Result<(), HomeError> {
        match &self.manifest {
            Some(declared) => {
                if declared.len() != self.observed.len() {
                    return Err(HomeError::corrupt_trace(format!(
                        "HBT manifest declares {} section(s) but the stream contains {} at byte {offset}",
                        declared.len(),
                        self.observed.len()
                    )));
                }
                for (i, (d, o)) in declared.iter().zip(&self.observed).enumerate() {
                    if d != o {
                        return Err(HomeError::corrupt_trace(format!(
                            "HBT manifest seed list disagrees with the stream: section {i} declared {} but the stream has {} at byte {offset}",
                            seed_name(*d),
                            seed_name(*o)
                        )));
                    }
                }
                Ok(())
            }
            None => {
                if self.observed.iter().any(Option::is_some) {
                    return Err(HomeError::corrupt_trace(format!(
                        "HBT stream with {} recorded section(s) ends without a section manifest (truncated at a section boundary?) at byte {offset}",
                        self.observed.len()
                    )));
                }
                Ok(())
            }
        }
    }
}

fn seed_name(seed: Option<u64>) -> String {
    match seed {
        Some(s) => format!("seed {s}"),
        None => "an anonymous section".to_string(),
    }
}

/// A trace section decoded from an HBT stream: everything between two `RUN`
/// records (or the whole stream, when no `RUN` record is present).
#[derive(Debug, Clone, Default)]
pub struct HbtSection {
    /// Scheduler seed, when the section was opened by a `RUN` record.
    pub seed: Option<u64>,
    /// The section's events.
    pub trace: Trace,
    /// The section's runtime incidents.
    pub incidents: Vec<TraceIncident>,
}

// ---------------------------------------------------------------------------
// primitive encoders
// ---------------------------------------------------------------------------

fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(b);
            break;
        }
        buf.push(b | 0x80);
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn put_string(buf: &mut Vec<u8>, s: &str) {
    put_varint(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

fn put_bool(buf: &mut Vec<u8>, b: bool) {
    buf.push(u8::from(b));
}

// ---------------------------------------------------------------------------
// payload encoding
// ---------------------------------------------------------------------------

fn level_byte(l: ThreadLevel) -> u8 {
    match l {
        ThreadLevel::Single => 0,
        ThreadLevel::Funneled => 1,
        ThreadLevel::Serialized => 2,
        ThreadLevel::Multiple => 3,
    }
}

fn var_byte(v: MonitoredVar) -> u8 {
    match v {
        MonitoredVar::Src => 0,
        MonitoredVar::Tag => 1,
        MonitoredVar::Comm => 2,
        MonitoredVar::Request => 3,
        MonitoredVar::Collective => 4,
        MonitoredVar::Finalize => 5,
    }
}

/// All MPI call kinds in wire-tag order (the declaration order of
/// [`MpiCallKind`]); the wire tag is the index into this table.
const CALL_KINDS: [MpiCallKind; 24] = [
    MpiCallKind::Init,
    MpiCallKind::InitThread,
    MpiCallKind::Finalize,
    MpiCallKind::Send,
    MpiCallKind::Ssend,
    MpiCallKind::Recv,
    MpiCallKind::Isend,
    MpiCallKind::Irecv,
    MpiCallKind::Sendrecv,
    MpiCallKind::Wait,
    MpiCallKind::Test,
    MpiCallKind::Waitall,
    MpiCallKind::Probe,
    MpiCallKind::Iprobe,
    MpiCallKind::Barrier,
    MpiCallKind::Bcast,
    MpiCallKind::Reduce,
    MpiCallKind::Allreduce,
    MpiCallKind::Gather,
    MpiCallKind::Scatter,
    MpiCallKind::Allgather,
    MpiCallKind::Alltoall,
    MpiCallKind::CommDup,
    MpiCallKind::CommSplit,
];

fn call_kind_byte(k: MpiCallKind) -> u8 {
    // Exhaustive linear scan over 24 entries; the table is tiny and this
    // keeps encode and decode driven by the same array.
    #[allow(clippy::cast_possible_truncation)]
    CALL_KINDS
        .iter()
        .position(|c| *c == k)
        .map(|i| i as u8)
        .unwrap_or(0)
}

fn put_call(buf: &mut Vec<u8>, c: &MpiCallRecord) {
    buf.push(call_kind_byte(c.kind));
    let mut flags = 0u8;
    if c.peer.is_some() {
        flags |= 1;
    }
    if c.tag.is_some() {
        flags |= 2;
    }
    if c.request.is_some() {
        flags |= 4;
    }
    if c.thread_level.is_some() {
        flags |= 8;
    }
    if c.is_main_thread {
        flags |= 16;
    }
    buf.push(flags);
    if let Some(p) = c.peer {
        put_varint(buf, zigzag(i64::from(p)));
    }
    if let Some(t) = c.tag {
        put_varint(buf, zigzag(i64::from(t)));
    }
    put_varint(buf, u64::from(c.comm.raw()));
    if let Some(r) = c.request {
        put_varint(buf, r.raw());
    }
    if let Some(l) = c.thread_level {
        buf.push(level_byte(l));
    }
}

fn put_memloc(buf: &mut Vec<u8>, loc: &MemLoc) {
    match loc {
        MemLoc::Monitored(v) => {
            buf.push(0);
            buf.push(var_byte(*v));
        }
        MemLoc::Var(v) => {
            buf.push(1);
            put_varint(buf, u64::from(v.raw()));
        }
        MemLoc::Elem(v, i) => {
            buf.push(2);
            put_varint(buf, u64::from(v.raw()));
            put_varint(buf, *i);
        }
    }
}

/// Encode one event into a record payload (kind byte included).
fn event_payload(e: &Event) -> Vec<u8> {
    let mut buf = Vec::with_capacity(32);
    buf.push(REC_EVENT);
    let mut flags = 0u8;
    if e.region.is_some() {
        flags |= 1;
    }
    if e.loc.is_some() {
        flags |= 2;
    }
    buf.push(flags);
    put_varint(&mut buf, e.seq);
    put_varint(&mut buf, u64::from(e.rank.raw()));
    put_varint(&mut buf, u64::from(e.tid.raw()));
    if let Some(r) = e.region {
        put_varint(&mut buf, r.raw());
    }
    put_varint(&mut buf, e.time_ns);
    if let Some(loc) = &e.loc {
        put_string(&mut buf, &loc.file);
        put_varint(&mut buf, u64::from(loc.line));
    }
    match &e.kind {
        EventKind::Access { loc, kind } => {
            buf.push(0);
            put_memloc(&mut buf, loc);
            buf.push(match kind {
                AccessKind::Read => 0,
                AccessKind::Write => 1,
            });
        }
        EventKind::MonitoredWrite { var, call } => {
            buf.push(1);
            buf.push(var_byte(*var));
            put_call(&mut buf, call);
        }
        EventKind::Acquire { lock } => {
            buf.push(2);
            put_varint(&mut buf, u64::from(lock.raw()));
        }
        EventKind::Release { lock } => {
            buf.push(3);
            put_varint(&mut buf, u64::from(lock.raw()));
        }
        EventKind::Fork { region, nthreads } => {
            buf.push(4);
            put_varint(&mut buf, region.raw());
            put_varint(&mut buf, u64::from(*nthreads));
        }
        EventKind::JoinRegion { region } => {
            buf.push(5);
            put_varint(&mut buf, region.raw());
        }
        EventKind::Barrier { barrier, epoch } => {
            buf.push(6);
            put_varint(&mut buf, u64::from(barrier.raw()));
            put_varint(&mut buf, *epoch);
        }
        EventKind::MpiCall { call } => {
            buf.push(7);
            put_call(&mut buf, call);
        }
        EventKind::MpiInit {
            level,
            requested_by_init_thread,
        } => {
            buf.push(8);
            buf.push(level_byte(*level));
            put_bool(&mut buf, *requested_by_init_thread);
        }
    }
    buf
}

fn run_payload(seed: u64) -> Vec<u8> {
    let mut buf = Vec::with_capacity(10);
    buf.push(REC_RUN);
    put_varint(&mut buf, seed);
    buf
}

fn incident_payload(inc: &TraceIncident) -> Vec<u8> {
    let mut buf = Vec::with_capacity(32);
    buf.push(REC_INCIDENT);
    put_varint(&mut buf, u64::from(inc.rank));
    put_varint(&mut buf, u64::from(inc.line));
    put_string(&mut buf, &inc.call);
    put_string(&mut buf, &inc.error);
    buf
}

fn manifest_payload(sections: &[Option<u64>]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(2 + sections.len() * 6);
    buf.push(REC_MANIFEST);
    put_varint(&mut buf, sections.len() as u64);
    for section in sections {
        match section {
            Some(seed) => {
                buf.push(1);
                put_varint(&mut buf, *seed);
            }
            None => buf.push(0),
        }
    }
    buf
}

/// Encode one v2 frame: header fields uncompressed, record bytes stored
/// compressed only when that actually saves space.
fn frame_payload(
    seed: Option<u64>,
    continuation: bool,
    events: u64,
    incidents: u64,
    raw: &[u8],
) -> Vec<u8> {
    let compressed = lz::compress(raw);
    let (stored, is_compressed) = if compressed.len() < raw.len() {
        (&compressed[..], true)
    } else {
        (raw, false)
    };
    let mut buf = Vec::with_capacity(16 + stored.len());
    buf.push(REC_FRAME);
    let mut flags = 0u8;
    if seed.is_some() {
        flags |= FRAME_HAS_SEED;
    }
    if is_compressed {
        flags |= FRAME_COMPRESSED;
    }
    if continuation {
        flags |= FRAME_CONTINUATION;
    }
    buf.push(flags);
    if let Some(s) = seed {
        put_varint(&mut buf, s);
    }
    put_varint(&mut buf, events);
    put_varint(&mut buf, incidents);
    put_varint(&mut buf, raw.len() as u64);
    buf.extend_from_slice(stored);
    buf
}

fn index_payload(entries: &[IndexEntry]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(2 + entries.len() * 16);
    buf.push(REC_INDEX);
    put_varint(&mut buf, entries.len() as u64);
    for entry in entries {
        let mut flags = 0u8;
        if entry.seed.is_some() {
            flags |= FRAME_HAS_SEED;
        }
        if entry.continuation {
            flags |= FRAME_CONTINUATION;
        }
        buf.push(flags);
        if let Some(s) = entry.seed {
            put_varint(&mut buf, s);
        }
        put_varint(&mut buf, entry.offset);
        put_varint(&mut buf, entry.events);
        put_varint(&mut buf, entry.incidents);
        put_varint(&mut buf, entry.raw_len);
    }
    buf
}

// ---------------------------------------------------------------------------
// writer
// ---------------------------------------------------------------------------

/// Streaming HBT writer over any [`io::Write`]. Writes the header on
/// construction; call [`HbtWriter::finish`] to emit the section manifest
/// and the end marker.
///
/// [`HbtWriter::new`] writes classic v1 streams (one record per event);
/// [`HbtWriter::new_compressed`] writes v2 streams, packing each section
/// into LZ-compressed frames and emitting a seek index before the
/// manifest. The per-section API is identical either way.
#[derive(Debug)]
pub struct HbtWriter<W: Write> {
    w: W,
    sections: Vec<Option<u64>>,
    open: bool,
    v2: Option<V2Writer>,
}

/// v2 writer state: the current section's buffered inner records plus the
/// seek index accumulated so far.
#[derive(Debug)]
struct V2Writer {
    /// Bytes written to the underlying writer so far (header included), so
    /// each frame's absolute offset is known when its index entry is made.
    written: u64,
    /// v1-encoded `EVENT`/`INCIDENT` records of the current section, not
    /// yet flushed into a frame.
    buf: Vec<u8>,
    /// Seed of the current section (`None` = the anonymous section).
    seed: Option<u64>,
    /// Events buffered but not yet framed.
    events: u64,
    /// Incidents buffered but not yet framed.
    incidents: u64,
    /// True once at least one frame of the current section was emitted
    /// (later frames of the section set the continuation flag).
    frame_emitted: bool,
    /// One entry per frame written, in stream order.
    index: Vec<IndexEntry>,
}

impl<W: Write> HbtWriter<W> {
    /// Open a v1 writer, emitting the magic/version header.
    pub fn new(mut w: W) -> io::Result<Self> {
        w.write_all(&HBT_MAGIC)?;
        w.write_all(&[HBT_VERSION])?;
        Ok(HbtWriter {
            w,
            sections: Vec::new(),
            open: false,
            v2: None,
        })
    }

    /// Open a v2 writer (`record --compress`): sections are packed into
    /// LZ-compressed frames and a seek index precedes the manifest.
    pub fn new_compressed(mut w: W) -> io::Result<Self> {
        w.write_all(&HBT_MAGIC)?;
        w.write_all(&[HBT_V2])?;
        Ok(HbtWriter {
            w,
            sections: Vec::new(),
            open: false,
            v2: Some(V2Writer {
                written: 5,
                buf: Vec::new(),
                seed: None,
                events: 0,
                incidents: 0,
                frame_emitted: false,
                index: Vec::new(),
            }),
        })
    }

    fn write_record(&mut self, payload: &[u8]) -> io::Result<()> {
        let mut len = Vec::with_capacity(5);
        put_varint(&mut len, payload.len() as u64);
        self.w.write_all(&len)?;
        self.w.write_all(payload)?;
        if let Some(st) = self.v2.as_mut() {
            st.written += (len.len() + payload.len()) as u64;
        }
        Ok(())
    }

    /// v2: write the buffered records as one frame and remember its index
    /// entry.
    fn emit_frame(&mut self) -> io::Result<()> {
        let payload = match &mut self.v2 {
            Some(st) => {
                let continuation = st.frame_emitted;
                let seed = if continuation { None } else { st.seed };
                let payload = frame_payload(seed, continuation, st.events, st.incidents, &st.buf);
                st.index.push(IndexEntry {
                    offset: st.written,
                    seed,
                    continuation,
                    events: st.events,
                    incidents: st.incidents,
                    raw_len: st.buf.len() as u64,
                });
                st.buf.clear();
                st.events = 0;
                st.incidents = 0;
                st.frame_emitted = true;
                payload
            }
            None => return Ok(()),
        };
        self.write_record(&payload)
    }

    /// v2: flush the open section. A `RUN`-opened section that buffered
    /// nothing still gets one (empty) frame, so its seed reaches readers.
    fn close_section(&mut self) -> io::Result<()> {
        if !self.open {
            return Ok(());
        }
        let needs_frame = match &self.v2 {
            Some(st) => !st.buf.is_empty() || !st.frame_emitted,
            None => false,
        };
        if needs_frame {
            self.emit_frame()?;
        }
        if let Some(st) = self.v2.as_mut() {
            st.seed = None;
            st.frame_emitted = false;
        }
        Ok(())
    }

    /// v2: append one inner record to the frame buffer, flushing a frame
    /// once it reaches [`FRAME_TARGET`] so giant sections split into
    /// bounded, independently decodable frames.
    fn buffer_framed(&mut self, payload: &[u8], is_event: bool) -> io::Result<()> {
        let full = match self.v2.as_mut() {
            Some(st) => {
                put_varint(&mut st.buf, payload.len() as u64);
                st.buf.extend_from_slice(payload);
                if is_event {
                    st.events += 1;
                } else {
                    st.incidents += 1;
                }
                st.buf.len() >= FRAME_TARGET
            }
            None => false,
        };
        if full {
            self.emit_frame()
        } else {
            Ok(())
        }
    }

    /// Start a new trace section recorded under `seed`.
    pub fn begin_run(&mut self, seed: u64) -> io::Result<()> {
        if self.v2.is_some() {
            self.close_section()?;
            self.sections.push(Some(seed));
            self.open = true;
            if let Some(st) = self.v2.as_mut() {
                st.seed = Some(seed);
            }
            return Ok(());
        }
        self.sections.push(Some(seed));
        self.open = true;
        self.write_record(&run_payload(seed))
    }

    /// The first event or incident before any `RUN` record opens the
    /// implicit anonymous section; track it for the manifest.
    fn note_body_record(&mut self) {
        if !self.open {
            self.sections.push(None);
            self.open = true;
        }
    }

    /// Append one event to the current section.
    pub fn write_event(&mut self, e: &Event) -> io::Result<()> {
        self.note_body_record();
        let payload = event_payload(e);
        if self.v2.is_some() {
            return self.buffer_framed(&payload, true);
        }
        self.write_record(&payload)
    }

    /// Append one incident to the current section.
    pub fn write_incident(&mut self, inc: &TraceIncident) -> io::Result<()> {
        self.note_body_record();
        let payload = incident_payload(inc);
        if self.v2.is_some() {
            return self.buffer_framed(&payload, false);
        }
        self.write_record(&payload)
    }

    /// Emit the seek index (v2), the section manifest, and the end marker,
    /// flush, and return the inner writer.
    pub fn finish(mut self) -> io::Result<W> {
        if self.v2.is_some() {
            self.close_section()?;
            let index = match &mut self.v2 {
                Some(st) => std::mem::take(&mut st.index),
                None => Vec::new(),
            };
            self.write_record(&index_payload(&index))?;
        }
        let manifest = manifest_payload(&self.sections);
        self.write_record(&manifest)?;
        self.w.write_all(&[0])?;
        self.w.flush()?;
        Ok(self.w)
    }
}

// ---------------------------------------------------------------------------
// reader
// ---------------------------------------------------------------------------

/// Shared v2 decode state: both readers inflate frames into a queue of
/// synthesized records and validate the trailing seek index against the
/// frames actually observed, via the same free functions, so their errors
/// stay byte-for-byte identical.
#[derive(Debug, Default)]
struct V2State {
    /// Records synthesized from the most recent frame, not yet yielded.
    pending: VecDeque<HbtRecord>,
    /// One entry per frame observed, in stream order, to check the index
    /// against.
    frames: Vec<IndexEntry>,
    /// True once the seek index record was seen.
    index_seen: bool,
    /// True while a section is open (frames or plain records have started
    /// one); continuation frames are only legal in this state.
    section_open: bool,
}

impl V2State {
    /// Validate at the end marker: a frame-bearing stream must carry its
    /// seek index, the same way a `RUN`-bearing stream must carry a
    /// manifest.
    fn check_end(&self, offset: u64) -> Result<(), HomeError> {
        if !self.frames.is_empty() && !self.index_seen {
            return Err(HomeError::corrupt_trace(format!(
                "HBT stream with {} compressed frame(s) ends without a seek index at byte {offset}",
                self.frames.len()
            )));
        }
        Ok(())
    }
}

/// Streaming HBT reader over any [`io::Read`]. Tracks the absolute byte
/// offset so every decode error points at the offending byte.
#[derive(Debug)]
pub struct HbtReader<R: Read> {
    r: R,
    offset: u64,
    finished: bool,
    version: u8,
    v2: V2State,
}

impl<R: Read> HbtReader<R> {
    /// Open a reader, validating the magic/version header. v1 and v2
    /// streams are both accepted; see the module docs.
    pub fn new(r: R) -> Result<Self, HomeError> {
        let mut reader = HbtReader {
            r,
            offset: 0,
            finished: false,
            version: HBT_VERSION,
            v2: V2State::default(),
        };
        let mut header = [0u8; 5];
        reader.read_exact(&mut header, "HBT header")?;
        if header[..4] != HBT_MAGIC {
            return Err(HomeError::corrupt_trace(
                "not an HBT stream: bad magic bytes",
            ));
        }
        if header[4] != HBT_VERSION && header[4] != HBT_V2 {
            return Err(HomeError::corrupt_trace(format!(
                "unsupported HBT version {} (expected {HBT_VERSION} or {HBT_V2}) at byte 4",
                header[4]
            )));
        }
        reader.version = header[4];
        Ok(reader)
    }

    fn truncated(&self, what: &str) -> HomeError {
        HomeError::trace_parse(format!(
            "truncated HBT stream: unexpected end of input in {what} at byte {}",
            self.offset
        ))
    }

    fn read_exact(&mut self, buf: &mut [u8], what: &str) -> Result<(), HomeError> {
        match self.r.read_exact(buf) {
            Ok(()) => {
                self.offset += buf.len() as u64;
                Ok(())
            }
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => Err(self.truncated(what)),
            Err(e) => Err(HomeError::trace_parse(format!(
                "I/O error reading HBT stream at byte {}: {e}",
                self.offset
            ))),
        }
    }

    fn read_varint(&mut self, what: &str) -> Result<u64, HomeError> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let mut b = [0u8; 1];
            self.read_exact(&mut b, what)?;
            if shift >= 64 || (shift == 63 && b[0] > 1) {
                return Err(HomeError::corrupt_trace(format!(
                    "varint overflow in {what} at byte {}",
                    self.offset - 1
                )));
            }
            v |= u64::from(b[0] & 0x7f) << shift;
            if b[0] & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// Read the next record, or `Ok(None)` at the end marker. Every
    /// malformed or truncated input yields a typed error. v2 frames are
    /// inflated and yielded as their synthesized `RUN`/`EVENT`/`INCIDENT`
    /// records.
    pub fn next_record(&mut self) -> Result<Option<HbtRecord>, HomeError> {
        loop {
            if let Some(record) = self.v2.pending.pop_front() {
                return Ok(Some(record));
            }
            if self.finished {
                return Ok(None);
            }
            let start = self.offset;
            let len = self.read_varint("record length (or missing end marker)")?;
            if len == 0 {
                self.finished = true;
                self.v2.check_end(self.offset)?;
                return Ok(None);
            }
            if len > MAX_RECORD_LEN {
                return Err(HomeError::corrupt_trace(format!(
                    "HBT record length {len} exceeds limit at byte {}",
                    self.offset
                )));
            }
            let base = self.offset;
            let len = len as usize;
            // The length prefix is attacker-controlled: read the payload in
            // bounded chunks so a lying varint costs at most one chunk of
            // allocation before the truncation error fires, never `len` bytes.
            let mut payload: Vec<u8> = Vec::with_capacity(len.min(READ_CHUNK));
            while payload.len() < len {
                let filled = payload.len();
                let take = (len - filled).min(READ_CHUNK);
                payload.resize(filled + take, 0);
                match self.r.read_exact(&mut payload[filled..]) {
                    Ok(()) => self.offset += take as u64,
                    Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                        return Err(HomeError::trace_parse(format!(
                            "truncated HBT stream: unexpected end of input in record payload \
                             at byte {base}"
                        )));
                    }
                    Err(e) => {
                        return Err(HomeError::trace_parse(format!(
                            "I/O error reading HBT stream at byte {}: {e}",
                            self.offset
                        )));
                    }
                }
            }
            let mut cur = Cur {
                buf: &payload,
                pos: 0,
                base,
            };
            let record = process_record(&mut cur, self.version, start, &mut self.v2)?;
            if cur.pos != payload.len() {
                return Err(HomeError::corrupt_trace(format!(
                    "HBT record has {} trailing byte(s) at byte {}",
                    payload.len() - cur.pos,
                    base + cur.pos as u64
                )));
            }
            if let Some(record) = record {
                return Ok(Some(record));
            }
        }
    }

    /// Bytes consumed from the underlying stream so far.
    pub fn offset(&self) -> u64 {
        self.offset
    }
}

/// Zero-copy HBT reader over an in-memory byte slice.
///
/// The streamable [`HbtReader`] copies each record payload into a fresh
/// buffer before decoding; when the whole stream is already in memory
/// (an mmap'd file, a `Vec` read from stdin) that copy is pure overhead.
/// This reader decodes records *straight from the slice*: the only
/// allocations are the decoded [`Event`]s themselves. Error messages and
/// byte offsets match the streaming reader, so callers can switch between
/// them without changing their diagnostics.
#[derive(Debug)]
pub struct HbtSliceReader<'a> {
    buf: &'a [u8],
    pos: usize,
    finished: bool,
    version: u8,
    v2: V2State,
}

impl<'a> HbtSliceReader<'a> {
    /// Open a reader over `bytes`, validating the magic/version header.
    /// v1 and v2 streams are both accepted; see the module docs.
    pub fn new(bytes: &'a [u8]) -> Result<Self, HomeError> {
        if bytes.len() < 5 {
            return Err(HomeError::trace_parse(
                "truncated HBT stream: unexpected end of input in HBT header at byte 0",
            ));
        }
        if bytes[..4] != HBT_MAGIC {
            return Err(HomeError::corrupt_trace(
                "not an HBT stream: bad magic bytes",
            ));
        }
        if bytes[4] != HBT_VERSION && bytes[4] != HBT_V2 {
            return Err(HomeError::corrupt_trace(format!(
                "unsupported HBT version {} (expected {HBT_VERSION} or {HBT_V2}) at byte 4",
                bytes[4]
            )));
        }
        Ok(HbtSliceReader {
            buf: bytes,
            pos: 5,
            finished: false,
            version: bytes[4],
            v2: V2State::default(),
        })
    }

    fn truncated(&self, what: &str) -> HomeError {
        HomeError::trace_parse(format!(
            "truncated HBT stream: unexpected end of input in {what} at byte {}",
            self.pos
        ))
    }

    fn read_varint(&mut self, what: &str) -> Result<u64, HomeError> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let b = *self.buf.get(self.pos).ok_or_else(|| self.truncated(what))?;
            self.pos += 1;
            if shift >= 64 || (shift == 63 && b > 1) {
                return Err(HomeError::corrupt_trace(format!(
                    "varint overflow in {what} at byte {}",
                    self.pos - 1
                )));
            }
            v |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// Read the next record, or `Ok(None)` at the end marker. Every
    /// malformed or truncated input yields a typed error. v2 frames are
    /// inflated and yielded as their synthesized `RUN`/`EVENT`/`INCIDENT`
    /// records.
    pub fn next_record(&mut self) -> Result<Option<HbtRecord>, HomeError> {
        loop {
            if let Some(record) = self.v2.pending.pop_front() {
                return Ok(Some(record));
            }
            if self.finished {
                return Ok(None);
            }
            let start = self.pos as u64;
            let len = self.read_varint("record length (or missing end marker)")?;
            if len == 0 {
                self.finished = true;
                self.v2.check_end(self.pos as u64)?;
                return Ok(None);
            }
            if len > MAX_RECORD_LEN {
                return Err(HomeError::corrupt_trace(format!(
                    "HBT record length {len} exceeds limit at byte {}",
                    self.pos
                )));
            }
            let len = len as usize;
            let base = self.pos as u64;
            let payload = self
                .pos
                .checked_add(len)
                .and_then(|end| self.buf.get(self.pos..end))
                .ok_or_else(|| self.truncated("record payload"))?;
            self.pos += len;
            let mut cur = Cur {
                buf: payload,
                pos: 0,
                base,
            };
            let record = process_record(&mut cur, self.version, start, &mut self.v2)?;
            if cur.pos != payload.len() {
                return Err(HomeError::corrupt_trace(format!(
                    "HBT record has {} trailing byte(s) at byte {}",
                    payload.len() - cur.pos,
                    base + cur.pos as u64
                )));
            }
            if let Some(record) = record {
                return Ok(Some(record));
            }
        }
    }

    /// Bytes consumed from the slice so far.
    pub fn offset(&self) -> u64 {
        self.pos as u64
    }
}

/// Cursor over one record payload; `base` is the payload's absolute offset
/// in the stream, so errors report stream positions.
struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
    base: u64,
}

impl Cur<'_> {
    fn at(&self) -> u64 {
        self.base + self.pos as u64
    }

    fn truncated(&self, what: &str) -> HomeError {
        HomeError::trace_parse(format!(
            "truncated HBT record: unexpected end of payload in {what} at byte {}",
            self.at()
        ))
    }

    fn corrupt(&self, msg: String) -> HomeError {
        HomeError::corrupt_trace(format!("{msg} at byte {}", self.at()))
    }

    fn u8(&mut self, what: &str) -> Result<u8, HomeError> {
        let b = *self.buf.get(self.pos).ok_or_else(|| self.truncated(what))?;
        self.pos += 1;
        Ok(b)
    }

    fn varint(&mut self, what: &str) -> Result<u64, HomeError> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let b = self.u8(what)?;
            if shift >= 64 || (shift == 63 && b > 1) {
                return Err(self.corrupt(format!("varint overflow in {what}")));
            }
            v |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    fn u32(&mut self, what: &str) -> Result<u32, HomeError> {
        let v = self.varint(what)?;
        u32::try_from(v).map_err(|_| self.corrupt(format!("{what} value {v} exceeds u32")))
    }

    fn i32(&mut self, what: &str) -> Result<i32, HomeError> {
        let v = unzigzag(self.varint(what)?);
        i32::try_from(v).map_err(|_| self.corrupt(format!("{what} value {v} exceeds i32")))
    }

    fn bool(&mut self, what: &str) -> Result<bool, HomeError> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(self.corrupt(format!("invalid boolean byte {b} in {what}"))),
        }
    }

    fn string(&mut self, what: &str) -> Result<String, HomeError> {
        let len = self.varint(what)? as usize;
        let end = self
            .pos
            .checked_add(len)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| self.truncated(what))?;
        let bytes = &self.buf[self.pos..end];
        let s = std::str::from_utf8(bytes)
            .map_err(|_| self.corrupt(format!("invalid UTF-8 in {what}")))?
            .to_owned();
        self.pos = end;
        Ok(s)
    }

    fn level(&mut self, what: &str) -> Result<ThreadLevel, HomeError> {
        match self.u8(what)? {
            0 => Ok(ThreadLevel::Single),
            1 => Ok(ThreadLevel::Funneled),
            2 => Ok(ThreadLevel::Serialized),
            3 => Ok(ThreadLevel::Multiple),
            b => Err(self.corrupt(format!("invalid thread-level byte {b} in {what}"))),
        }
    }

    fn monitored_var(&mut self, what: &str) -> Result<MonitoredVar, HomeError> {
        match self.u8(what)? {
            0 => Ok(MonitoredVar::Src),
            1 => Ok(MonitoredVar::Tag),
            2 => Ok(MonitoredVar::Comm),
            3 => Ok(MonitoredVar::Request),
            4 => Ok(MonitoredVar::Collective),
            5 => Ok(MonitoredVar::Finalize),
            b => Err(self.corrupt(format!("invalid monitored-variable byte {b} in {what}"))),
        }
    }

    fn call(&mut self) -> Result<MpiCallRecord, HomeError> {
        let tag = self.u8("MPI call kind")?;
        let kind = *CALL_KINDS
            .get(tag as usize)
            .ok_or_else(|| self.corrupt(format!("invalid MPI call kind byte {tag}")))?;
        let flags = self.u8("MPI call flags")?;
        if flags & !0x1f != 0 {
            return Err(self.corrupt(format!("invalid MPI call flag bits {flags:#x}")));
        }
        let peer = if flags & 1 != 0 {
            Some(self.i32("MPI call peer")?)
        } else {
            None
        };
        let tag_arg = if flags & 2 != 0 {
            Some(self.i32("MPI call tag")?)
        } else {
            None
        };
        let comm = CommId(self.u32("MPI call communicator")?);
        let request = if flags & 4 != 0 {
            Some(ReqId(self.varint("MPI call request")?))
        } else {
            None
        };
        let thread_level = if flags & 8 != 0 {
            Some(self.level("MPI call thread level")?)
        } else {
            None
        };
        Ok(MpiCallRecord {
            kind,
            peer,
            tag: tag_arg,
            comm,
            request,
            is_main_thread: flags & 16 != 0,
            thread_level,
        })
    }

    fn memloc(&mut self) -> Result<MemLoc, HomeError> {
        match self.u8("memory-location tag")? {
            0 => Ok(MemLoc::Monitored(self.monitored_var("monitored variable")?)),
            1 => Ok(MemLoc::Var(VarId(self.u32("variable id")?))),
            2 => Ok(MemLoc::Elem(
                VarId(self.u32("variable id")?),
                self.varint("element index")?,
            )),
            b => Err(self.corrupt(format!("invalid memory-location tag {b}"))),
        }
    }

    fn event(&mut self) -> Result<Event, HomeError> {
        let flags = self.u8("event flags")?;
        if flags & !0x03 != 0 {
            return Err(self.corrupt(format!("invalid event flag bits {flags:#x}")));
        }
        let seq = self.varint("event seq")?;
        let rank = Rank(self.u32("event rank")?);
        let tid = Tid(self.u32("event tid")?);
        let region = if flags & 1 != 0 {
            Some(RegionId(self.varint("event region")?))
        } else {
            None
        };
        let time_ns = self.varint("event time")?;
        let loc = if flags & 2 != 0 {
            let file = self.string("source file")?;
            let line = self.u32("source line")?;
            Some(SrcLoc { file, line })
        } else {
            None
        };
        let kind = match self.u8("event kind tag")? {
            0 => {
                let mem = self.memloc()?;
                let kind = match self.u8("access kind")? {
                    0 => AccessKind::Read,
                    1 => AccessKind::Write,
                    b => return Err(self.corrupt(format!("invalid access kind byte {b}"))),
                };
                EventKind::Access { loc: mem, kind }
            }
            1 => EventKind::MonitoredWrite {
                var: self.monitored_var("monitored variable")?,
                call: self.call()?,
            },
            2 => EventKind::Acquire {
                lock: LockId(self.u32("lock id")?),
            },
            3 => EventKind::Release {
                lock: LockId(self.u32("lock id")?),
            },
            4 => EventKind::Fork {
                region: RegionId(self.varint("fork region")?),
                nthreads: self.u32("fork nthreads")?,
            },
            5 => EventKind::JoinRegion {
                region: RegionId(self.varint("join region")?),
            },
            6 => EventKind::Barrier {
                barrier: BarrierId(self.u32("barrier id")?),
                epoch: self.varint("barrier epoch")?,
            },
            7 => EventKind::MpiCall { call: self.call()? },
            8 => EventKind::MpiInit {
                level: self.level("init thread level")?,
                requested_by_init_thread: self.bool("init thread flag")?,
            },
            b => return Err(self.corrupt(format!("invalid event kind tag {b}"))),
        };
        Ok(Event {
            seq,
            rank,
            tid,
            region,
            time_ns,
            loc,
            kind,
        })
    }
}

/// Decode one record payload, dispatching v2 kinds through the shared
/// reader state. Returns `Ok(None)` when the record was a frame (its
/// synthesized records were queued in `v2.pending`). `start` is the
/// absolute offset of the record's length varint — the offset a seek
/// index must quote for a frame.
///
/// Both readers route every record through this one function, so their
/// validation rules and error strings stay byte-for-byte identical.
fn process_record(
    cur: &mut Cur<'_>,
    version: u8,
    start: u64,
    v2: &mut V2State,
) -> Result<Option<HbtRecord>, HomeError> {
    let kind = cur.u8("record kind")?;
    if version < HBT_V2 && (kind == REC_FRAME || kind == REC_INDEX) {
        return Err(cur.corrupt(format!(
            "HBT v2 record kind {kind} in a version-{version} stream"
        )));
    }
    if v2.index_seen && kind != REC_MANIFEST && kind != REC_INDEX {
        return Err(cur.corrupt(format!("HBT record kind {kind} after the seek index")));
    }
    match kind {
        REC_FRAME => {
            decode_frame(cur, start, v2)?;
            Ok(None)
        }
        REC_INDEX => Ok(Some(HbtRecord::Index {
            entries: decode_index(cur, v2)?,
        })),
        _ => {
            let record = decode_body(kind, cur)?;
            if matches!(
                record,
                HbtRecord::Run { .. } | HbtRecord::Event(_) | HbtRecord::Incident(_)
            ) {
                v2.section_open = true;
            }
            Ok(Some(record))
        }
    }
}

/// A v2 frame's decoded header fields (everything before the stored
/// bytes; never compressed).
struct FrameHeader {
    seed: Option<u64>,
    continuation: bool,
    compressed: bool,
    events: u64,
    incidents: u64,
    raw_len: u64,
}

/// Decode and validate a frame header. `section_open` is whether the
/// stream has a section in progress — continuation frames require one,
/// and an anonymous (seedless, non-continuation) frame is only legal
/// before any section has started.
fn decode_frame_header(cur: &mut Cur<'_>, section_open: bool) -> Result<FrameHeader, HomeError> {
    let flags = cur.u8("frame flags")?;
    if flags & !(FRAME_HAS_SEED | FRAME_COMPRESSED | FRAME_CONTINUATION) != 0 {
        return Err(cur.corrupt(format!("invalid HBT frame flag bits {flags:#x}")));
    }
    let continuation = flags & FRAME_CONTINUATION != 0;
    let seed = if flags & FRAME_HAS_SEED != 0 {
        if continuation {
            return Err(cur.corrupt("HBT continuation frame carries a section seed".to_string()));
        }
        Some(cur.varint("frame seed")?)
    } else {
        None
    };
    if continuation && !section_open {
        return Err(cur.corrupt("HBT continuation frame without an open section".to_string()));
    }
    if !continuation && seed.is_none() && section_open {
        return Err(cur.corrupt("anonymous HBT frame after a recorded section".to_string()));
    }
    let events = cur.varint("frame event count")?;
    let incidents = cur.varint("frame incident count")?;
    let raw_len = cur.varint("frame uncompressed length")?;
    if raw_len > MAX_RECORD_LEN {
        return Err(cur.corrupt(format!(
            "HBT frame uncompressed length {raw_len} exceeds limit"
        )));
    }
    Ok(FrameHeader {
        seed,
        continuation,
        compressed: flags & FRAME_COMPRESSED != 0,
        events,
        incidents,
        raw_len,
    })
}

/// Decode one frame into `v2.pending` (synthesized `RUN` first for
/// seed-bearing frames) and record its index entry.
fn decode_frame(cur: &mut Cur<'_>, start: u64, v2: &mut V2State) -> Result<(), HomeError> {
    let header = decode_frame_header(cur, v2.section_open)?;
    let stored = &cur.buf[cur.pos..];
    cur.pos = cur.buf.len();
    let records = if header.compressed {
        let raw = lz::decompress(stored, header.raw_len as usize).map_err(|e| {
            HomeError::corrupt_trace(format!("corrupt compressed HBT frame at byte {start}: {e}"))
        })?;
        decode_frame_body(&raw, header.events, header.incidents, start)?
    } else {
        if stored.len() as u64 != header.raw_len {
            return Err(HomeError::corrupt_trace(format!(
                "HBT frame at byte {start} declares {} uncompressed byte(s) but stores {}",
                header.raw_len,
                stored.len()
            )));
        }
        decode_frame_body(stored, header.events, header.incidents, start)?
    };
    v2.frames.push(IndexEntry {
        offset: start,
        seed: header.seed,
        continuation: header.continuation,
        events: header.events,
        incidents: header.incidents,
        raw_len: header.raw_len,
    });
    if let Some(seed) = header.seed {
        v2.pending.push_back(HbtRecord::Run { seed });
    }
    v2.section_open = true;
    v2.pending.extend(records);
    Ok(())
}

/// Wrap an error from inside a frame body: the inner offset is relative
/// to the (possibly decompressed) frame bytes, so the frame's absolute
/// stream offset leads the message.
fn frame_corrupt(start: u64, e: HomeError) -> HomeError {
    HomeError::corrupt_trace(format!("corrupt HBT frame at byte {start}: {e}"))
}

/// Parse a frame's uncompressed body: a concatenation of length-prefixed
/// `EVENT`/`INCIDENT` records, validated against the header's declared
/// counts.
fn decode_frame_body(
    raw: &[u8],
    events: u64,
    incidents: u64,
    start: u64,
) -> Result<Vec<HbtRecord>, HomeError> {
    let mut out = Vec::new();
    walk_frame_body(raw, events, incidents, start, |record| out.push(record))?;
    Ok(out)
}

/// The core frame-body walk shared by [`decode_frame_body`] (record list)
/// and [`decode_frame_into`] (reusable batch): one validation loop, one
/// set of error messages, the caller chooses where records land.
fn walk_frame_body(
    raw: &[u8],
    events: u64,
    incidents: u64,
    start: u64,
    mut sink: impl FnMut(HbtRecord),
) -> Result<(), HomeError> {
    let mut cur = Cur {
        buf: raw,
        pos: 0,
        base: 0,
    };
    let (mut n_events, mut n_incidents) = (0u64, 0u64);
    while cur.pos < raw.len() {
        let len = cur
            .varint("frame record length")
            .map_err(|e| frame_corrupt(start, e))?;
        if len == 0 {
            return Err(HomeError::corrupt_trace(format!(
                "empty record inside the HBT frame at byte {start}"
            )));
        }
        let end = cur
            .pos
            .checked_add(len as usize)
            .filter(|&e| e <= raw.len())
            .ok_or_else(|| frame_corrupt(start, cur.truncated("frame record payload")))?;
        let payload = &raw[cur.pos..end];
        let base = cur.pos as u64;
        cur.pos = end;
        let mut inner = Cur {
            buf: payload,
            pos: 0,
            base,
        };
        let kind = inner
            .u8("record kind")
            .map_err(|e| frame_corrupt(start, e))?;
        if kind != REC_EVENT && kind != REC_INCIDENT {
            return Err(HomeError::corrupt_trace(format!(
                "record kind {kind} inside the HBT frame at byte {start}"
            )));
        }
        let record = decode_body(kind, &mut inner).map_err(|e| frame_corrupt(start, e))?;
        if inner.pos != payload.len() {
            return Err(HomeError::corrupt_trace(format!(
                "HBT record has {} trailing byte(s) inside the frame at byte {start}",
                payload.len() - inner.pos
            )));
        }
        match &record {
            HbtRecord::Event(_) => n_events += 1,
            _ => n_incidents += 1,
        }
        sink(record);
    }
    if n_events != events || n_incidents != incidents {
        return Err(HomeError::corrupt_trace(format!(
            "HBT frame at byte {start} declares {events} event(s) and {incidents} incident(s) \
             but stores {n_events} and {n_incidents}"
        )));
    }
    Ok(())
}

/// Decode the seek index record's entries (validation against observed
/// frames happens in the callers).
fn decode_index_entries(cur: &mut Cur<'_>) -> Result<Vec<IndexEntry>, HomeError> {
    let count = cur.varint("index frame count")?;
    // Each entry is at least five bytes, so the count is bounded by the
    // bytes actually present — check before sizing any allocation off the
    // attacker-controlled value.
    let remaining = (cur.buf.len() - cur.pos) as u64;
    if count > remaining {
        return Err(cur.corrupt(format!("HBT index frame count {count} exceeds record size")));
    }
    let mut entries = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let flags = cur.u8("index entry flags")?;
        if flags & !(FRAME_HAS_SEED | FRAME_CONTINUATION) != 0 {
            return Err(cur.corrupt(format!("invalid HBT index entry flag bits {flags:#x}")));
        }
        let continuation = flags & FRAME_CONTINUATION != 0;
        let seed = if flags & FRAME_HAS_SEED != 0 {
            if continuation {
                return Err(
                    cur.corrupt("HBT continuation index entry carries a section seed".to_string())
                );
            }
            Some(cur.varint("index entry seed")?)
        } else {
            None
        };
        entries.push(IndexEntry {
            offset: cur.varint("index entry offset")?,
            seed,
            continuation,
            events: cur.varint("index entry event count")?,
            incidents: cur.varint("index entry incident count")?,
            raw_len: cur.varint("index entry uncompressed length")?,
        });
    }
    Ok(entries)
}

/// Reject a seek index that disagrees with the frames actually observed
/// in the stream — a lying offset, seed, count, or length never reaches
/// the parallel decode path.
fn check_index(declared: &[IndexEntry], observed: &[IndexEntry], at: u64) -> Result<(), HomeError> {
    if declared.len() != observed.len() {
        return Err(HomeError::corrupt_trace(format!(
            "HBT seek index declares {} frame(s) but the stream contains {} at byte {at}",
            declared.len(),
            observed.len()
        )));
    }
    for (i, (d, o)) in declared.iter().zip(observed).enumerate() {
        if d != o {
            return Err(HomeError::corrupt_trace(format!(
                "HBT seek index entry {i} disagrees with the stream: declared {d:?} \
                 but observed {o:?} at byte {at}"
            )));
        }
    }
    Ok(())
}

/// Decode and validate the seek index against the reader's observed
/// frames.
fn decode_index(cur: &mut Cur<'_>, v2: &mut V2State) -> Result<Vec<IndexEntry>, HomeError> {
    if v2.index_seen {
        return Err(cur.corrupt("duplicate HBT seek index".to_string()));
    }
    let entries = decode_index_entries(cur)?;
    check_index(&entries, &v2.frames, cur.at())?;
    v2.index_seen = true;
    Ok(entries)
}

fn decode_body(kind: u8, cur: &mut Cur<'_>) -> Result<HbtRecord, HomeError> {
    match kind {
        REC_RUN => Ok(HbtRecord::Run {
            seed: cur.varint("run seed")?,
        }),
        REC_EVENT => Ok(HbtRecord::Event(cur.event()?)),
        REC_INCIDENT => Ok(HbtRecord::Incident(TraceIncident {
            rank: cur.u32("incident rank")?,
            line: cur.u32("incident line")?,
            call: cur.string("incident call")?,
            error: cur.string("incident error")?,
        })),
        REC_MANIFEST => {
            let count = cur.varint("manifest section count")?;
            // Each section entry is at least one flag byte, so the count is
            // bounded by the bytes actually present — check before sizing
            // any allocation off the attacker-controlled value.
            let remaining = (cur.buf.len() - cur.pos) as u64;
            if count > remaining {
                return Err(cur.corrupt(format!(
                    "HBT manifest section count {count} exceeds record size"
                )));
            }
            let mut sections = Vec::with_capacity(count as usize);
            for _ in 0..count {
                let recorded = cur.bool("manifest section flag")?;
                let seed = if recorded {
                    Some(cur.varint("manifest section seed")?)
                } else {
                    None
                };
                sections.push(seed);
            }
            Ok(HbtRecord::Manifest { sections })
        }
        b => Err(cur.corrupt(format!("invalid record kind byte {b}"))),
    }
}

// ---------------------------------------------------------------------------
// whole-trace helpers
// ---------------------------------------------------------------------------

/// Encode a whole trace as a single anonymous HBT section.
pub fn encode_trace(trace: &Trace) -> Vec<u8> {
    let mut out = Vec::with_capacity(5 + trace.events().len() * 24);
    out.extend_from_slice(&HBT_MAGIC);
    out.push(HBT_VERSION);
    for e in trace.events() {
        let payload = event_payload(e);
        put_varint(&mut out, payload.len() as u64);
        out.extend_from_slice(&payload);
    }
    let sections: &[Option<u64>] = if trace.events().is_empty() {
        &[]
    } else {
        &[None]
    };
    let manifest = manifest_payload(sections);
    put_varint(&mut out, manifest.len() as u64);
    out.extend_from_slice(&manifest);
    out.push(0);
    out
}

/// Decode an HBT byte stream into its trace sections. Records appearing
/// before the first `RUN` record form an implicit anonymous section.
///
/// Decodes zero-copy via [`HbtSliceReader`]: no per-record payload
/// buffer is allocated.
pub fn decode_sections(bytes: &[u8]) -> Result<Vec<HbtSection>, HomeError> {
    let mut reader = HbtSliceReader::new(bytes)?;
    let mut sections: Vec<HbtSection> = Vec::new();
    let mut seed: Option<u64> = None;
    let mut events: Vec<Event> = Vec::new();
    let mut incidents: Vec<TraceIncident> = Vec::new();
    let mut open = false;
    let flush = |seed: &mut Option<u64>,
                 events: &mut Vec<Event>,
                 incidents: &mut Vec<TraceIncident>,
                 sections: &mut Vec<HbtSection>| {
        sections.push(HbtSection {
            seed: seed.take(),
            trace: Trace::from_events(std::mem::take(events)),
            incidents: std::mem::take(incidents),
        });
    };
    let mut check = ManifestCheck::new();
    while let Some(record) = reader.next_record()? {
        check.on_record(&record, reader.offset())?;
        match record {
            HbtRecord::Run { seed: s } => {
                if open {
                    flush(&mut seed, &mut events, &mut incidents, &mut sections);
                }
                seed = Some(s);
                open = true;
            }
            HbtRecord::Event(e) => {
                events.push(e);
                open = true;
            }
            HbtRecord::Incident(i) => {
                incidents.push(i);
                open = true;
            }
            HbtRecord::Manifest { .. } | HbtRecord::Index { .. } => {}
        }
    }
    check.finish(reader.offset())?;
    if open {
        flush(&mut seed, &mut events, &mut incidents, &mut sections);
    }
    Ok(sections)
}

/// Stitch a decoded record sequence into trace sections — the same
/// grouping [`decode_sections`] performs (`RUN` opens a section; leading
/// bare records form the anonymous section; `MANIFEST`/`INDEX` are
/// ignored). The parallel replay path uses it to reassemble per-frame
/// record batches into sections.
pub fn sections_from_records<I: IntoIterator<Item = HbtRecord>>(records: I) -> Vec<HbtSection> {
    let mut sections: Vec<HbtSection> = Vec::new();
    let mut seed: Option<u64> = None;
    let mut events: Vec<Event> = Vec::new();
    let mut incidents: Vec<TraceIncident> = Vec::new();
    let mut open = false;
    for record in records {
        match record {
            HbtRecord::Run { seed: s } => {
                if open {
                    sections.push(HbtSection {
                        seed: seed.take(),
                        trace: Trace::from_events(std::mem::take(&mut events)),
                        incidents: std::mem::take(&mut incidents),
                    });
                }
                seed = Some(s);
                open = true;
            }
            HbtRecord::Event(e) => {
                events.push(e);
                open = true;
            }
            HbtRecord::Incident(i) => {
                incidents.push(i);
                open = true;
            }
            HbtRecord::Manifest { .. } | HbtRecord::Index { .. } => {}
        }
    }
    if open {
        sections.push(HbtSection {
            seed,
            trace: Trace::from_events(events),
            incidents,
        });
    }
    sections
}

// ---------------------------------------------------------------------------
// v2 layout scan (parallel decode support)
// ---------------------------------------------------------------------------

/// Where one v2 frame lives in a byte stream and what its header
/// declares. Produced by [`scan_layout`]; consumed by
/// [`decode_frame_records`] / [`decode_frame_into`].
#[derive(Debug, Clone)]
pub struct FrameLoc {
    /// The frame's header fields, as a seek-index entry.
    pub entry: IndexEntry,
    /// True when the stored bytes are LZ-compressed.
    compressed: bool,
    /// Byte range of the stored frame body within the stream.
    body: std::ops::Range<usize>,
}

impl FrameLoc {
    /// True when the stored bytes are LZ-compressed.
    pub fn compressed(&self) -> bool {
        self.compressed
    }

    /// The frame's stored (still-compressed) body bytes within `stream`.
    /// The serve ingest fast path fingerprints these without inflating
    /// them; the decode paths inflate them.
    pub fn stored<'a>(&self, stream: &'a [u8]) -> Result<&'a [u8], HomeError> {
        stream.get(self.body.clone()).ok_or_else(|| {
            HomeError::corrupt_trace(format!(
                "HBT frame body at byte {} extends past the end of the stream",
                self.entry.offset
            ))
        })
    }
}

/// The validated structure of a v2 stream: every frame's location, ready
/// for independent (parallel) decoding.
#[derive(Debug, Clone)]
pub struct HbtLayout {
    /// Frames in stream order.
    pub frames: Vec<FrameLoc>,
}

fn scan_varint(buf: &[u8], pos: &mut usize, what: &str) -> Result<u64, HomeError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let b = *buf.get(*pos).ok_or_else(|| {
            HomeError::trace_parse(format!(
                "truncated HBT stream: unexpected end of input in {what} at byte {}",
                *pos
            ))
        })?;
        *pos += 1;
        if shift >= 64 || (shift == 63 && b > 1) {
            return Err(HomeError::corrupt_trace(format!(
                "varint overflow in {what} at byte {}",
                *pos - 1
            )));
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Walk a stream's record headers without decompressing or decoding any
/// frame body, returning every frame's location for parallel decode.
///
/// Returns `Ok(None)` when the stream is v1, or a v2 stream carrying
/// plain (unframed) body records — callers fall back to the serial
/// [`decode_sections`] path, which handles every valid stream. The scan
/// validates the full v2 structure: the end marker, the seek index
/// against the frame headers actually present, and the manifest against
/// the sections the frames declare — so a lying index or a spliced
/// stream is rejected here without inflating a single frame.
pub fn scan_layout(bytes: &[u8]) -> Result<Option<HbtLayout>, HomeError> {
    if bytes.len() < 5 {
        return Err(HomeError::trace_parse(
            "truncated HBT stream: unexpected end of input in HBT header at byte 0",
        ));
    }
    if bytes[..4] != HBT_MAGIC {
        return Err(HomeError::corrupt_trace(
            "not an HBT stream: bad magic bytes",
        ));
    }
    if bytes[4] == HBT_VERSION {
        return Ok(None);
    }
    if bytes[4] != HBT_V2 {
        return Err(HomeError::corrupt_trace(format!(
            "unsupported HBT version {} (expected {HBT_VERSION} or {HBT_V2}) at byte 4",
            bytes[4]
        )));
    }
    let mut pos = 5usize;
    let mut frames: Vec<FrameLoc> = Vec::new();
    let mut index_seen = false;
    let mut manifest_seen = false;
    let mut section_open = false;
    let mut check = ManifestCheck::new();
    // Per header-level section: its seed and total stored record count,
    // for the record-level manifest cross-check after the walk.
    let mut section_records: Vec<(Option<u64>, u64)> = Vec::new();
    loop {
        let start = pos as u64;
        let len = scan_varint(bytes, &mut pos, "record length (or missing end marker)")?;
        if len == 0 {
            break;
        }
        if len > MAX_RECORD_LEN {
            return Err(HomeError::corrupt_trace(format!(
                "HBT record length {len} exceeds limit at byte {pos}"
            )));
        }
        if manifest_seen {
            return Err(HomeError::corrupt_trace(format!(
                "HBT record after the section manifest at byte {start}"
            )));
        }
        let base = pos as u64;
        let len = len as usize;
        let end = pos
            .checked_add(len)
            .filter(|&e| e <= bytes.len())
            .ok_or_else(|| {
                HomeError::trace_parse(format!(
                    "truncated HBT stream: unexpected end of input in record payload at byte {pos}"
                ))
            })?;
        let payload = &bytes[pos..end];
        pos = end;
        let mut cur = Cur {
            buf: payload,
            pos: 0,
            base,
        };
        let kind = cur.u8("record kind")?;
        match kind {
            REC_FRAME => {
                if index_seen {
                    return Err(HomeError::corrupt_trace(format!(
                        "HBT record kind {kind} after the seek index at byte {base}"
                    )));
                }
                let header = decode_frame_header(&mut cur, section_open)?;
                let body = (base as usize + cur.pos)..end;
                if !header.compressed && body.len() as u64 != header.raw_len {
                    return Err(HomeError::corrupt_trace(format!(
                        "HBT frame at byte {start} declares {} uncompressed byte(s) but stores {}",
                        header.raw_len,
                        body.len()
                    )));
                }
                if !header.continuation {
                    check.note_section(header.seed);
                    section_records.push((header.seed, header.events + header.incidents));
                } else if let Some(last) = section_records.last_mut() {
                    last.1 += header.events + header.incidents;
                }
                frames.push(FrameLoc {
                    entry: IndexEntry {
                        offset: start,
                        seed: header.seed,
                        continuation: header.continuation,
                        events: header.events,
                        incidents: header.incidents,
                        raw_len: header.raw_len,
                    },
                    compressed: header.compressed,
                    body,
                });
                section_open = true;
            }
            REC_INDEX => {
                if index_seen {
                    return Err(cur.corrupt("duplicate HBT seek index".to_string()));
                }
                let entries = decode_index_entries(&mut cur)?;
                if cur.pos != payload.len() {
                    return Err(HomeError::corrupt_trace(format!(
                        "HBT record has {} trailing byte(s) at byte {}",
                        payload.len() - cur.pos,
                        base + cur.pos as u64
                    )));
                }
                let observed: Vec<IndexEntry> = frames.iter().map(|f| f.entry).collect();
                check_index(&entries, &observed, base + cur.pos as u64)?;
                index_seen = true;
            }
            REC_MANIFEST => {
                let record = decode_body(kind, &mut cur)?;
                if cur.pos != payload.len() {
                    return Err(HomeError::corrupt_trace(format!(
                        "HBT record has {} trailing byte(s) at byte {}",
                        payload.len() - cur.pos,
                        base + cur.pos as u64
                    )));
                }
                check.on_record(&record, pos as u64)?;
                manifest_seen = true;
            }
            // Plain v1-style body records (or an invalid kind byte): the
            // serial reader path handles — or properly rejects — these.
            _ => return Ok(None),
        }
    }
    if !frames.is_empty() && !index_seen {
        return Err(HomeError::corrupt_trace(format!(
            "HBT stream with {} compressed frame(s) ends without a seek index at byte {pos}",
            frames.len()
        )));
    }
    check.finish(pos as u64)?;
    // Header-level sectioning counts an anonymous frame as a section even
    // when it stores no records; the record-level reader only opens an
    // anonymous section when records actually arrive. A manifest that
    // matches the headers but not the records is the serial reader's
    // mismatch — reject it here with the same diagnostic so every decode
    // path (any `--jobs`) agrees.
    if let Some(declared) = &check.manifest {
        let materialized = section_records
            .iter()
            .filter(|(seed, records)| seed.is_some() || *records > 0)
            .count();
        if declared.len() != materialized {
            return Err(HomeError::corrupt_trace(format!(
                "HBT manifest declares {} section(s) but the stream contains {} at byte {pos}",
                declared.len(),
                materialized
            )));
        }
    }
    Ok(Some(HbtLayout { frames }))
}

/// Decode one frame located by [`scan_layout`] into its records (a
/// synthesized `RUN` first, for seed-bearing frames). Frames decode
/// independently — this is the unit of work the parallel replay path
/// fans out across workers.
pub fn decode_frame_records(bytes: &[u8], frame: &FrameLoc) -> Result<Vec<HbtRecord>, HomeError> {
    let start = frame.entry.offset;
    let stored = frame.stored(bytes)?;
    let mut records = Vec::new();
    if let Some(seed) = frame.entry.seed {
        records.push(HbtRecord::Run { seed });
    }
    let body = if frame.compressed {
        let raw = lz::decompress(stored, frame.entry.raw_len as usize).map_err(|e| {
            HomeError::corrupt_trace(format!("corrupt compressed HBT frame at byte {start}: {e}"))
        })?;
        decode_frame_body(&raw, frame.entry.events, frame.entry.incidents, start)?
    } else {
        decode_frame_body(stored, frame.entry.events, frame.entry.incidents, start)?
    };
    records.extend(body);
    Ok(records)
}

/// One decoded frame's contents as reusable flat buffers: the batched
/// counterpart of [`decode_frame_records`]. A `FrameBatch` survives
/// across frames — [`decode_frame_into`] clears it but keeps its
/// capacity, so a decode loop allocates event storage once per worker
/// instead of once per frame.
#[derive(Debug, Clone, Default)]
pub struct FrameBatch {
    /// Section seed, for the first frame of a `RUN`-recorded section.
    pub seed: Option<u64>,
    /// True when the frame continues the previous frame's section.
    pub continuation: bool,
    /// The frame's events, in stream order.
    pub events: Vec<Event>,
    /// The frame's incidents, in stream order.
    pub incidents: Vec<TraceIncident>,
}

impl FrameBatch {
    /// An empty batch.
    pub fn new() -> FrameBatch {
        FrameBatch::default()
    }

    /// Empty the batch, keeping its buffers' capacity for reuse.
    pub fn clear(&mut self) {
        self.seed = None;
        self.continuation = false;
        self.events.clear();
        self.incidents.clear();
    }
}

/// Reusable working storage for [`decode_frame_into`]: holds the inflated
/// frame body so consecutive frames share one decompression buffer.
#[derive(Debug, Default)]
pub struct FrameScratch {
    raw: Vec<u8>,
}

impl FrameScratch {
    /// Fresh scratch space.
    pub fn new() -> FrameScratch {
        FrameScratch::default()
    }
}

/// Decode one frame located by [`scan_layout`] straight into a reusable
/// [`FrameBatch`], sharing the validation loop (and error messages) of
/// [`decode_frame_records`] without materializing a `Vec<HbtRecord>`.
/// On error the batch holds partial contents; the next call clears it.
pub fn decode_frame_into(
    bytes: &[u8],
    frame: &FrameLoc,
    scratch: &mut FrameScratch,
    batch: &mut FrameBatch,
) -> Result<(), HomeError> {
    batch.clear();
    batch.seed = frame.entry.seed;
    batch.continuation = frame.entry.continuation;
    let start = frame.entry.offset;
    let stored = frame.stored(bytes)?;
    // Size the buffers from the header's declared counts, bounded by the
    // bytes actually present (every record is at least two bytes), so a
    // lying count can't force a giant allocation before the body is read.
    let body_len = if frame.compressed {
        frame.entry.raw_len as usize
    } else {
        stored.len()
    };
    let cap = |declared: u64| (declared as usize).min(body_len / 2);
    batch.events.reserve(cap(frame.entry.events));
    batch.incidents.reserve(cap(frame.entry.incidents));
    let raw: &[u8] = if frame.compressed {
        lz::decompress_into(stored, frame.entry.raw_len as usize, &mut scratch.raw).map_err(
            |e| {
                HomeError::corrupt_trace(format!(
                    "corrupt compressed HBT frame at byte {start}: {e}"
                ))
            },
        )?;
        &scratch.raw
    } else {
        stored
    };
    let (events, incidents) = (&mut batch.events, &mut batch.incidents);
    walk_frame_body(
        raw,
        frame.entry.events,
        frame.entry.incidents,
        start,
        |record| match record {
            HbtRecord::Event(e) => events.push(e),
            HbtRecord::Incident(i) => incidents.push(i),
            // walk_frame_body only yields EVENT/INCIDENT records (any
            // other kind byte is a decode error before the sink runs).
            _ => {}
        },
    )
}

/// Stitch decoded frame batches into trace sections — the batched
/// counterpart of [`sections_from_records`]: a non-continuation batch
/// closes the current section and opens a new one, a continuation batch
/// extends it. Batches donate their buffers to the sections they open,
/// so the common one-frame-per-section case moves rather than copies.
pub fn sections_from_batches<I: IntoIterator<Item = FrameBatch>>(batches: I) -> Vec<HbtSection> {
    let mut sections: Vec<HbtSection> = Vec::new();
    let mut seed: Option<u64> = None;
    let mut events: Vec<Event> = Vec::new();
    let mut incidents: Vec<TraceIncident> = Vec::new();
    let mut open = false;
    for batch in batches {
        if !batch.continuation && batch.seed.is_some() {
            if open {
                sections.push(HbtSection {
                    seed: seed.take(),
                    trace: Trace::from_events(std::mem::take(&mut events)),
                    incidents: std::mem::take(&mut incidents),
                });
            }
            seed = batch.seed;
            events = batch.events;
            incidents = batch.incidents;
            open = true;
        } else {
            // Continuation frames and the anonymous head frame carry no
            // `RUN` record, so their records extend the current section
            // and only open it if they are non-empty — exactly what
            // [`sections_from_records`] does with their record streams.
            if events.is_empty() {
                events = batch.events;
            } else {
                events.extend(batch.events);
            }
            if incidents.is_empty() {
                incidents = batch.incidents;
            } else {
                incidents.extend(batch.incidents);
            }
            open |= !events.is_empty() || !incidents.is_empty();
        }
    }
    if open {
        sections.push(HbtSection {
            seed,
            trace: Trace::from_events(events),
            incidents,
        });
    }
    sections
}

// ---------------------------------------------------------------------------
// mmap reader
// ---------------------------------------------------------------------------

/// Minimal raw bindings for read-only file mapping. The workspace has no
/// `libc` dependency, so the two symbols needed are declared directly;
/// `PROT_READ`/`MAP_PRIVATE` have these values on every platform this
/// builds for (Linux, macOS, BSDs).
#[cfg(unix)]
mod mmap_sys {
    use std::os::unix::io::RawFd;

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;

    extern "C" {
        fn mmap(
            addr: *mut core::ffi::c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut core::ffi::c_void;
        fn munmap(addr: *mut core::ffi::c_void, len: usize) -> i32;
    }

    /// Map `len` bytes of `fd` read-only and private. Returns `None` if
    /// the kernel refuses; the caller falls back to buffered reads.
    /// `len` must be nonzero (zero-length mappings are `EINVAL`).
    pub fn map(fd: RawFd, len: usize) -> Option<*const u8> {
        let ptr = unsafe { mmap(std::ptr::null_mut(), len, PROT_READ, MAP_PRIVATE, fd, 0) };
        // MAP_FAILED is (void *)-1; a null return would also be unusable.
        if ptr as isize == -1 || ptr.is_null() {
            None
        } else {
            Some(ptr as *const u8)
        }
    }

    pub fn unmap(ptr: *const u8, len: usize) {
        // A failed munmap leaks the mapping until process exit; there is
        // nothing more useful to do from a destructor.
        unsafe { munmap(ptr as *mut core::ffi::c_void, len) };
    }
}

#[derive(Debug)]
enum MapBacking {
    /// A live read-only mapping, unmapped on drop.
    #[cfg(unix)]
    Mapped { ptr: *const u8, len: usize },
    /// Fallback: file contents read into memory (empty files — a
    /// zero-length mmap is an error — and non-unix platforms).
    Buffered(Vec<u8>),
}

/// A memory-mapped HBT trace file, decoded zero-copy.
///
/// `open` maps the file read-only (falling back to a buffered read if the
/// kernel refuses or the file is empty) and [`sections`](Self::sections)
/// decodes records straight out of the mapping via [`HbtSliceReader`] —
/// replaying a large recording touches each page once, demand-paged, with
/// no up-front read of the whole file into the heap.
#[derive(Debug)]
pub struct HbtMmapReader {
    backing: MapBacking,
    path: String,
}

// Safety: the mapping is PROT_READ + MAP_PRIVATE, so the pointed-to bytes
// are immutable for the lifetime of the value; sharing it across threads
// is no different from sharing a `&[u8]`.
unsafe impl Send for HbtMmapReader {}
unsafe impl Sync for HbtMmapReader {}

impl Drop for HbtMmapReader {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let MapBacking::Mapped { ptr, len } = self.backing {
            mmap_sys::unmap(ptr, len);
        }
    }
}

impl HbtMmapReader {
    /// Map `path` read-only. I/O failures become [`HomeError::TraceParse`]
    /// naming the file, so CLI diagnostics stay one-line and typed.
    pub fn open(path: impl AsRef<std::path::Path>) -> Result<Self, HomeError> {
        let path = path.as_ref();
        let display = path.display().to_string();
        let file = std::fs::File::open(path)
            .map_err(|e| HomeError::trace_parse(format!("cannot open {display}: {e}")))?;
        let meta = file
            .metadata()
            .map_err(|e| HomeError::trace_parse(format!("cannot stat {display}: {e}")))?;
        let len = usize::try_from(meta.len())
            .map_err(|_| HomeError::trace_parse(format!("{display} is too large to map")))?;
        #[cfg(unix)]
        if len > 0 {
            use std::os::unix::io::AsRawFd;
            if let Some(ptr) = mmap_sys::map(file.as_raw_fd(), len) {
                return Ok(HbtMmapReader {
                    backing: MapBacking::Mapped { ptr, len },
                    path: display,
                });
            }
        }
        let mut bytes = Vec::with_capacity(len);
        let mut file = file;
        file.read_to_end(&mut bytes)
            .map_err(|e| HomeError::trace_parse(format!("cannot read {display}: {e}")))?;
        Ok(HbtMmapReader {
            backing: MapBacking::Buffered(bytes),
            path: display,
        })
    }

    /// The raw mapped bytes.
    pub fn bytes(&self) -> &[u8] {
        match &self.backing {
            #[cfg(unix)]
            MapBacking::Mapped { ptr, len } => {
                // Safety: `ptr` is a live PROT_READ mapping of exactly
                // `len` bytes, valid until `self` drops.
                unsafe { std::slice::from_raw_parts(*ptr, *len) }
            }
            MapBacking::Buffered(bytes) => bytes,
        }
    }

    /// The path this reader was opened from.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// True if the mapped file starts with the HBT magic.
    pub fn is_hbt(&self) -> bool {
        is_hbt(self.bytes())
    }

    /// True if the kernel mapping succeeded (false means the buffered
    /// fallback is in use).
    pub fn is_mapped(&self) -> bool {
        #[cfg(unix)]
        {
            matches!(self.backing, MapBacking::Mapped { .. })
        }
        #[cfg(not(unix))]
        {
            false
        }
    }

    /// A zero-copy record iterator over the mapping.
    pub fn records(&self) -> Result<HbtSliceReader<'_>, HomeError> {
        HbtSliceReader::new(self.bytes())
    }

    /// Decode the whole mapping into trace sections.
    pub fn sections(&self) -> Result<Vec<HbtSection>, HomeError> {
        decode_sections(self.bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_event(seq: u64) -> Event {
        Event {
            seq,
            rank: Rank(1),
            tid: Tid(2),
            region: Some(RegionId(3)),
            time_ns: 400,
            loc: Some(SrcLoc::new("x.hmp", 9)),
            kind: EventKind::Barrier {
                barrier: BarrierId(0),
                epoch: 1,
            },
        }
    }

    #[test]
    fn varint_roundtrip_extremes() {
        for v in [0u64, 1, 127, 128, 300, u64::from(u32::MAX), u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut cur = Cur {
                buf: &buf,
                pos: 0,
                base: 0,
            };
            assert_eq!(cur.varint("v").unwrap(), v);
            assert_eq!(cur.pos, buf.len());
        }
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, -1, 1, -2, i64::from(i32::MIN), i64::from(i32::MAX)] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn trace_roundtrip() {
        let trace = Trace::from_events(vec![sample_event(0), sample_event(1)]);
        let bytes = encode_trace(&trace);
        assert!(is_hbt(&bytes));
        let sections = decode_sections(&bytes).unwrap();
        assert_eq!(sections.len(), 1);
        assert_eq!(sections[0].seed, None);
        assert_eq!(sections[0].trace.events(), trace.events());
    }

    #[test]
    fn multi_section_roundtrip() {
        let mut w = HbtWriter::new(Vec::new()).unwrap();
        w.begin_run(7).unwrap();
        w.write_event(&sample_event(0)).unwrap();
        w.write_incident(&TraceIncident {
            rank: 1,
            line: 12,
            call: "MPI_Recv".into(),
            error: "boom".into(),
        })
        .unwrap();
        w.begin_run(8).unwrap();
        w.write_event(&sample_event(1)).unwrap();
        let bytes = w.finish().unwrap();
        let sections = decode_sections(&bytes).unwrap();
        assert_eq!(sections.len(), 2);
        assert_eq!(sections[0].seed, Some(7));
        assert_eq!(sections[0].incidents.len(), 1);
        assert_eq!(sections[1].seed, Some(8));
        assert_eq!(sections[1].trace.events().len(), 1);
    }

    #[test]
    fn empty_stream_has_no_sections() {
        let trace = Trace::default();
        let bytes = encode_trace(&trace);
        assert_eq!(decode_sections(&bytes).unwrap().len(), 0);
    }

    #[test]
    fn bad_magic_is_typed_error() {
        let err = decode_sections(b"not hbt at all").unwrap_err();
        assert!(matches!(err, HomeError::CorruptTrace { .. }), "{err:?}");
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let trace = Trace::from_events(vec![sample_event(0)]);
        let bytes = encode_trace(&trace);
        for cut in 0..bytes.len() {
            let err = decode_sections(&bytes[..cut])
                .err()
                .unwrap_or_else(|| panic!("prefix of {cut} bytes decoded cleanly"));
            assert!(
                matches!(
                    err,
                    HomeError::TraceParse { .. } | HomeError::CorruptTrace { .. }
                ),
                "cut {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn slice_reader_matches_buffered_reader() {
        let mut w = HbtWriter::new(Vec::new()).unwrap();
        w.begin_run(7).unwrap();
        w.write_event(&sample_event(0)).unwrap();
        w.write_event(&sample_event(1)).unwrap();
        w.write_incident(&TraceIncident {
            rank: 1,
            line: 12,
            call: "MPI_Recv".into(),
            error: "boom".into(),
        })
        .unwrap();
        let bytes = w.finish().unwrap();

        let mut buffered = HbtReader::new(&bytes[..]).unwrap();
        let mut sliced = HbtSliceReader::new(&bytes).unwrap();
        loop {
            let a = buffered.next_record().unwrap();
            let b = sliced.next_record().unwrap();
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn slice_reader_truncation_errors_match_buffered() {
        let trace = Trace::from_events(vec![sample_event(0)]);
        let bytes = encode_trace(&trace);
        for cut in 0..bytes.len() {
            let prefix = &bytes[..cut];
            let buffered = drain(HbtReader::new(prefix).and_then(|mut r| loop {
                if r.next_record()?.is_none() {
                    return Ok(());
                }
            }));
            let sliced = drain(HbtSliceReader::new(prefix).and_then(|mut r| loop {
                if r.next_record()?.is_none() {
                    return Ok(());
                }
            }));
            assert_eq!(buffered, sliced, "cut {cut}");
        }
    }

    fn drain(result: Result<(), HomeError>) -> String {
        match result {
            Ok(()) => "ok".to_string(),
            Err(e) => format!("{e}"),
        }
    }

    #[test]
    fn mmap_reader_sections_match_decode_sections() {
        let mut w = HbtWriter::new(Vec::new()).unwrap();
        w.begin_run(42).unwrap();
        w.write_event(&sample_event(0)).unwrap();
        w.write_event(&sample_event(1)).unwrap();
        let bytes = w.finish().unwrap();
        let path = std::env::temp_dir().join(format!("hbt_mmap_test_{}.hbt", std::process::id()));
        std::fs::write(&path, &bytes).unwrap();
        let reader = HbtMmapReader::open(&path).unwrap();
        assert!(reader.is_hbt());
        assert_eq!(reader.bytes(), &bytes[..]);
        let mapped = reader.sections().unwrap();
        let buffered = decode_sections(&bytes).unwrap();
        assert_eq!(mapped.len(), buffered.len());
        for (m, b) in mapped.iter().zip(&buffered) {
            assert_eq!(m.seed, b.seed);
            assert_eq!(m.trace.events(), b.trace.events());
        }
        drop(reader);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mmap_reader_empty_file_falls_back() {
        let path = std::env::temp_dir().join(format!("hbt_mmap_empty_{}.hbt", std::process::id()));
        std::fs::write(&path, b"").unwrap();
        let reader = HbtMmapReader::open(&path).unwrap();
        assert!(!reader.is_mapped(), "zero-length files cannot be mapped");
        assert!(reader.bytes().is_empty());
        assert!(reader.sections().is_err(), "empty input is a typed error");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mmap_reader_missing_file_is_typed_error() {
        let err = HbtMmapReader::open("/nonexistent/definitely/missing.hbt").unwrap_err();
        assert!(matches!(err, HomeError::TraceParse { .. }), "{err:?}");
    }

    /// Record the same two-section trace through both writers; the v2
    /// stream must decode to identical sections.
    fn twin_streams() -> (Vec<u8>, Vec<u8>) {
        let mut v1 = HbtWriter::new(Vec::new()).unwrap();
        let mut v2 = HbtWriter::new_compressed(Vec::new()).unwrap();
        for w in [&mut v1, &mut v2] {
            w.begin_run(7).unwrap();
            for seq in 0..100 {
                w.write_event(&sample_event(seq)).unwrap();
            }
            w.write_incident(&TraceIncident {
                rank: 1,
                line: 12,
                call: "MPI_Recv".into(),
                error: "boom".into(),
            })
            .unwrap();
            w.begin_run(8).unwrap();
            w.write_event(&sample_event(100)).unwrap();
        }
        (v1.finish().unwrap(), v2.finish().unwrap())
    }

    fn assert_same_sections(a: &[HbtSection], b: &[HbtSection]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.trace.events(), y.trace.events());
            assert_eq!(x.incidents, y.incidents);
        }
    }

    #[test]
    fn v2_roundtrip_matches_v1_sections() {
        let (v1, v2) = twin_streams();
        assert!(v2.len() < v1.len(), "{} vs {}", v2.len(), v1.len());
        assert_same_sections(
            &decode_sections(&v1).unwrap(),
            &decode_sections(&v2).unwrap(),
        );
    }

    #[test]
    fn v2_streaming_reader_matches_slice_reader() {
        let (_, v2) = twin_streams();
        let mut buffered = HbtReader::new(&v2[..]).unwrap();
        let mut sliced = HbtSliceReader::new(&v2).unwrap();
        loop {
            let a = buffered.next_record().unwrap();
            let b = sliced.next_record().unwrap();
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn v2_every_truncation_is_a_typed_error() {
        let (_, v2) = twin_streams();
        for cut in 0..v2.len() {
            let err = decode_sections(&v2[..cut])
                .err()
                .unwrap_or_else(|| panic!("prefix of {cut} bytes decoded cleanly"));
            assert!(
                matches!(
                    err,
                    HomeError::TraceParse { .. } | HomeError::CorruptTrace { .. }
                ),
                "cut {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn v2_giant_section_splits_into_continuation_frames() {
        let mut w = HbtWriter::new_compressed(Vec::new()).unwrap();
        w.begin_run(3).unwrap();
        // Enough events to overflow FRAME_TARGET several times over.
        let n = (FRAME_TARGET / 8) as u64;
        for seq in 0..n {
            w.write_event(&sample_event(seq)).unwrap();
        }
        let bytes = w.finish().unwrap();
        let layout = scan_layout(&bytes).unwrap().unwrap();
        assert!(layout.frames.len() > 1, "{} frame(s)", layout.frames.len());
        assert_eq!(layout.frames[0].entry.seed, Some(3));
        assert!(layout.frames[1].entry.continuation);
        assert_eq!(layout.frames.iter().map(|f| f.entry.events).sum::<u64>(), n);
        // Frame-by-frame decode stitches back to the serial result.
        let mut records = Vec::new();
        for frame in &layout.frames {
            records.extend(decode_frame_records(&bytes, frame).unwrap());
        }
        let stitched = sections_from_records(records);
        assert_same_sections(&stitched, &decode_sections(&bytes).unwrap());
    }

    #[test]
    fn scan_layout_returns_none_for_v1() {
        let (v1, v2) = twin_streams();
        assert!(scan_layout(&v1).unwrap().is_none());
        let layout = scan_layout(&v2).unwrap().unwrap();
        assert_eq!(layout.frames.len(), 2);
        let mut records = Vec::new();
        for frame in &layout.frames {
            records.extend(decode_frame_records(&v2, frame).unwrap());
        }
        assert_same_sections(
            &sections_from_records(records),
            &decode_sections(&v2).unwrap(),
        );
    }

    #[test]
    fn v2_empty_stream_roundtrips() {
        let w = HbtWriter::new_compressed(Vec::new()).unwrap();
        let bytes = w.finish().unwrap();
        assert_eq!(decode_sections(&bytes).unwrap().len(), 0);
        assert!(scan_layout(&bytes).unwrap().unwrap().frames.is_empty());
    }

    #[test]
    fn v2_empty_run_section_keeps_its_seed() {
        let mut w = HbtWriter::new_compressed(Vec::new()).unwrap();
        w.begin_run(11).unwrap();
        w.begin_run(12).unwrap();
        w.write_event(&sample_event(0)).unwrap();
        let bytes = w.finish().unwrap();
        let sections = decode_sections(&bytes).unwrap();
        assert_eq!(sections.len(), 2);
        assert_eq!(sections[0].seed, Some(11));
        assert_eq!(sections[0].trace.events().len(), 0);
        assert_eq!(sections[1].seed, Some(12));
    }

    #[test]
    fn v2_kinds_in_v1_stream_are_typed_errors() {
        for kind in [REC_FRAME, REC_INDEX] {
            let mut bytes = Vec::new();
            bytes.extend_from_slice(&HBT_MAGIC);
            bytes.push(HBT_VERSION);
            bytes.push(2); // record length
            bytes.push(kind);
            bytes.push(0); // flags / count
            bytes.push(0); // end marker
            let err = decode_sections(&bytes).unwrap_err();
            let msg = format!("{err}");
            assert!(msg.contains("v2 record kind"), "kind {kind}: {msg}");
            assert!(msg.contains("byte"), "kind {kind}: {msg}");
        }
    }

    #[test]
    fn v2_stream_without_index_is_rejected() {
        let (_, v2) = twin_streams();
        // Locate every record; drop the INDEX one and re-splice.
        let mut pos = 5usize;
        let mut out: Vec<u8> = v2[..5].to_vec();
        loop {
            let start = pos;
            let len = scan_varint(&v2, &mut pos, "len").unwrap();
            if len == 0 {
                out.push(0);
                break;
            }
            let end = pos + len as usize;
            if v2[pos] != REC_INDEX {
                out.extend_from_slice(&v2[start..end]);
            }
            pos = end;
        }
        let err = decode_sections(&out).unwrap_err();
        let msg = format!("{err}");
        assert!(msg.contains("without a seek index"), "{msg}");
        assert!(msg.contains("byte"), "{msg}");
    }
}
