//! The simulated MPI universe.

use crate::collective::CollectiveSeq;
use crate::comm::CommTable;
use crate::config::MpiConfig;
use crate::error::{MpiError, MpiResult};
use crate::msg::Message;
use crate::process::Process;
use crate::reqs::{ReqState, RequestTable};
use home_sched::{Runtime, Vtid};
use home_trace::{CommId, Rank, ThreadLevel};
use parking_lot::{Mutex, MutexGuard};
use std::collections::HashMap;
use std::sync::Arc;

/// Per-process MPI lifecycle state.
#[derive(Debug, Default)]
pub(crate) struct ProcState {
    /// Thread level provided at initialization (`None` = not initialized).
    pub level: Option<ThreadLevel>,
    /// True after `MPI_Finalize` completed on this process.
    pub finalized: bool,
    /// Virtual thread that called `MPI_Init` (`MPI_Is_thread_main`).
    pub main_vtid: Option<Vtid>,
}

/// Mutable world state (single lock; operations are short and never block
/// while holding it).
pub(crate) struct WorldState {
    pub comms: CommTable,
    pub reqs: RequestTable,
    pub procs: Vec<ProcState>,
    /// Unexpected-message queue per destination world rank, arrival order.
    pub mailbox: Vec<Vec<Message>>,
    /// Threads blocked in blocking receive/probe per world rank.
    pub recv_waiters: Vec<Vec<Vtid>>,
    /// Collective slot sequences per communicator.
    pub collectives: HashMap<CommId, CollectiveSeq>,
    /// FIFO sequence per (src, dst, tag, comm) channel.
    pub fifo: HashMap<(Rank, Rank, i32, CommId), u64>,
    /// Unique message id counter.
    pub next_msg_uid: u64,
    /// Synchronous senders blocked until their message (by uid) is matched
    /// by a receive.
    pub sync_waiters: HashMap<u64, Vtid>,
}

impl WorldState {
    fn new(n: usize) -> Self {
        WorldState {
            comms: CommTable::new_world(n),
            reqs: RequestTable::new(),
            procs: (0..n).map(|_| ProcState::default()).collect(),
            mailbox: vec![Vec::new(); n],
            recv_waiters: vec![Vec::new(); n],
            collectives: HashMap::new(),
            fifo: HashMap::new(),
            next_msg_uid: 0,
            sync_waiters: HashMap::new(),
        }
    }

    /// Deliver `msg` to `dst`: try pending nonblocking receives first (post
    /// order), else append to the unexpected queue. Returns threads to wake.
    pub fn deliver(&mut self, dst: Rank, msg: Message) -> Vec<Vtid> {
        self.mailbox[dst.index()].push(msg);
        let mut woken = self.sweep(dst);
        // Wake blocked receivers/probers so they can re-scan.
        woken.append(&mut self.recv_waiters[dst.index()]);
        woken
    }

    /// Match pending nonblocking receives of `dst` against the unexpected
    /// queue, earliest post first, preserving channel FIFO order. Returns
    /// threads to wake.
    pub fn sweep(&mut self, dst: Rank) -> Vec<Vtid> {
        let mut woken = Vec::new();
        loop {
            let pending = self.reqs.pending_recvs_of(dst);
            let mut matched = None;
            'outer: for (req, src, tag, comm) in
                pending.into_iter().map(|(r, s, t, c, _)| (r, s, t, c))
            {
                for (pos, m) in self.mailbox[dst.index()].iter().enumerate() {
                    if m.matches(src, tag, comm) {
                        matched = Some((req, pos));
                        break 'outer;
                    }
                }
            }
            match matched {
                Some((req, pos)) => {
                    let msg = self.mailbox[dst.index()].remove(pos);
                    // A rendezvous sender completes when its message is
                    // matched by a receive.
                    if let Some(w) = self.sync_waiters.remove(&msg.uid) {
                        woken.push(w);
                    }
                    woken.extend(self.reqs.complete_recv(req, msg));
                }
                None => break,
            }
        }
        woken
    }

    /// Allocate a fresh message uid.
    pub fn msg_uid(&mut self) -> u64 {
        let u = self.next_msg_uid;
        self.next_msg_uid += 1;
        u
    }

    /// Next FIFO sequence number on a channel.
    pub fn fifo_next(&mut self, src: Rank, dst: Rank, tag: i32, comm: CommId) -> u64 {
        let e = self.fifo.entry((src, dst, tag, comm)).or_insert(0);
        let s = *e;
        *e += 1;
        s
    }
}

pub(crate) struct WorldShared {
    pub rt: Runtime,
    pub config: MpiConfig,
    pub size: usize,
    pub state: Mutex<WorldState>,
}

/// A simulated MPI universe of `size` processes.
///
/// Each process is driven by one or more virtual threads of the associated
/// [`Runtime`]; obtain per-rank handles with [`World::process`]. All MPI
/// semantics — envelope matching with wildcards, non-overtaking channels,
/// nonblocking requests, probing, collectives, communicator management, and
/// the four thread-support levels — are implemented here on virtual time.
///
/// ```
/// use home_mpi::{payload, MpiConfig, SrcSpec, TagSpec, World};
/// use home_sched::{Runtime, SchedConfig};
/// use home_trace::{ThreadLevel, COMM_WORLD};
///
/// let rt = Runtime::new(SchedConfig::deterministic(1));
/// let world = World::new(rt.clone(), 2, MpiConfig::test());
/// for r in 0..2 {
///     let p = world.process(r);
///     rt.spawn(format!("rank{r}"), move || {
///         p.init_thread(ThreadLevel::Multiple).unwrap();
///         if p.rank() == 0 {
///             p.send(1, 7, COMM_WORLD, payload(vec![3.0])).unwrap();
///         } else {
///             let (data, st) = p.recv(SrcSpec::Any, TagSpec::Any, COMM_WORLD).unwrap();
///             assert_eq!((data[0], st.tag), (3.0, 7));
///         }
///         p.finalize().unwrap();
///     });
/// }
/// rt.run().unwrap();
/// ```
#[derive(Clone)]
pub struct World {
    pub(crate) shared: Arc<WorldShared>,
}

impl World {
    /// Create a world of `size` processes scheduled by `rt`.
    pub fn new(rt: Runtime, size: usize, config: MpiConfig) -> World {
        assert!(size > 0, "world must have at least one process");
        World {
            shared: Arc::new(WorldShared {
                rt,
                config,
                size,
                state: Mutex::new(WorldState::new(size)),
            }),
        }
    }

    /// Number of processes.
    pub fn size(&self) -> usize {
        self.shared.size
    }

    /// The scheduler driving this world.
    pub fn runtime(&self) -> &Runtime {
        &self.shared.rt
    }

    /// The configuration.
    pub fn config(&self) -> &MpiConfig {
        &self.shared.config
    }

    /// Handle for `rank`'s MPI calls. Cheap; may be cloned into the rank's
    /// OpenMP threads.
    pub fn process(&self, rank: u32) -> Process {
        assert!(
            (rank as usize) < self.shared.size,
            "rank {rank} out of range for world of size {}",
            self.shared.size
        );
        Process::new(self.clone(), Rank(rank))
    }

    pub(crate) fn lock(&self) -> MutexGuard<'_, WorldState> {
        self.shared.state.lock()
    }

    /// True if every process has been finalized.
    pub fn all_finalized(&self) -> bool {
        self.lock().procs.iter().all(|p| p.finalized)
    }

    /// Count of live (unconsumed) requests — test helper for leak checks.
    pub fn live_requests(&self) -> usize {
        self.lock().reqs.live()
    }

    /// Messages still sitting in unexpected queues — test helper.
    pub fn undelivered_messages(&self) -> usize {
        self.lock().mailbox.iter().map(|q| q.len()).sum()
    }

    pub(crate) fn check_active(&self, rank: Rank) -> MpiResult<ThreadLevel> {
        let st = self.lock();
        let p = &st.procs[rank.index()];
        match p.level {
            None => Err(MpiError::NotInitialized),
            Some(_) if p.finalized => Err(MpiError::AlreadyFinalized),
            Some(level) => Ok(level),
        }
    }

    /// Validate that a request exists and is not yet consumed — useful for
    /// harness-level assertions about request hygiene.
    pub fn request_live(&self, req: home_trace::ReqId) -> bool {
        let st = self.lock();
        matches!(
            st.reqs.get(req).map(|r| &r.state),
            Ok(ReqState::PendingRecv { .. })
                | Ok(ReqState::ReadyRecv(_))
                | Ok(ReqState::SendInFlight { .. })
        )
    }
}

impl std::fmt::Debug for World {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("World")
            .field("size", &self.shared.size)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::{payload, SrcSpec, TagSpec};
    use home_sched::SchedConfig;
    use home_trace::COMM_WORLD;

    fn mk_msg(src: u32, dst_seq: u64, tag: i32) -> Message {
        Message {
            src,
            src_world: Rank(src),
            tag,
            comm: COMM_WORLD,
            data: payload(vec![src as f64]),
            available_at_ns: 0,
            fifo_seq: dst_seq,
            uid: 1000 + dst_seq,
        }
    }

    #[test]
    fn deliver_goes_to_mailbox_without_postings() {
        let mut st = WorldState::new(2);
        let woken = st.deliver(Rank(1), mk_msg(0, 0, 5));
        assert!(woken.is_empty());
        assert_eq!(st.mailbox[1].len(), 1);
    }

    #[test]
    fn sweep_matches_earliest_posting_first() {
        let mut st = WorldState::new(2);
        let s0 = st.reqs.next_post_seq();
        let r0 = st.reqs.alloc(
            Rank(1),
            ReqState::PendingRecv {
                dst: Rank(1),
                src: SrcSpec::Any,
                tag: TagSpec::Any,
                comm: COMM_WORLD,
                post_seq: s0,
            },
        );
        let s1 = st.reqs.next_post_seq();
        let r1 = st.reqs.alloc(
            Rank(1),
            ReqState::PendingRecv {
                dst: Rank(1),
                src: SrcSpec::Any,
                tag: TagSpec::Any,
                comm: COMM_WORLD,
                post_seq: s1,
            },
        );
        st.deliver(Rank(1), mk_msg(0, 0, 1));
        assert!(
            matches!(st.reqs.get(r0).unwrap().state, ReqState::ReadyRecv(_)),
            "earliest posting matched first"
        );
        assert!(matches!(
            st.reqs.get(r1).unwrap().state,
            ReqState::PendingRecv { .. }
        ));
        st.deliver(Rank(1), mk_msg(0, 1, 2));
        assert!(matches!(
            st.reqs.get(r1).unwrap().state,
            ReqState::ReadyRecv(_)
        ));
        assert_eq!(st.mailbox[1].len(), 0);
    }

    #[test]
    fn fifo_counters_are_per_channel() {
        let mut st = WorldState::new(2);
        assert_eq!(st.fifo_next(Rank(0), Rank(1), 0, COMM_WORLD), 0);
        assert_eq!(st.fifo_next(Rank(0), Rank(1), 0, COMM_WORLD), 1);
        assert_eq!(st.fifo_next(Rank(0), Rank(1), 1, COMM_WORLD), 0);
        assert_eq!(st.fifo_next(Rank(1), Rank(0), 0, COMM_WORLD), 0);
    }

    #[test]
    fn world_basics() {
        let rt = Runtime::new(SchedConfig::deterministic(0));
        let w = World::new(rt, 4, MpiConfig::test());
        assert_eq!(w.size(), 4);
        assert_eq!(w.undelivered_messages(), 0);
        assert_eq!(w.live_requests(), 0);
        assert!(!w.all_finalized());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_rank_panics() {
        let rt = Runtime::new(SchedConfig::deterministic(0));
        let w = World::new(rt, 2, MpiConfig::test());
        let _ = w.process(2);
    }
}
