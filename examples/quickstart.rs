//! End-to-end HOME pipeline on a small DSL program.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Walks through the paper's workflow explicitly: static analysis →
//! instrumented execution → dynamic concurrency detection → violation
//! matching — then prints each stage's output.

use home::prelude::*;
use std::sync::Arc;

const SOURCE: &str = r#"
program quickstart {
    mpi_init_thread(multiple);

    // Sequential MPI: provably outside any parallel region, so the static
    // phase never instruments it.
    mpi_barrier();

    omp parallel num_threads(2) {
        // Correct: thread-distinct tags differentiate the messages.
        mpi_send(to: rank, tag: 100 + tid, count: 1);
        mpi_recv(from: rank, tag: 100 + tid);

        // Violation: both threads receive with the same tag — the MPI
        // standard requires arrival messages to be differentiated.
        if (rank == 1) {
            mpi_recv(from: 0, tag: 7);
        }
    }
    if (rank == 0) {
        mpi_send(to: 1, tag: 7, count: 1);
        mpi_send(to: 1, tag: 7, count: 1);
    }

    mpi_finalize();
}
"#;

fn main() {
    let program = parse(SOURCE).expect("valid DSL");

    // 1. Static phase: CFG walk, hybrid-region marking, checklist.
    let static_report = analyze(&program);
    println!("--- static phase ---");
    println!(
        "{} MPI call sites; {} instrumented, {} skipped",
        static_report.stats.total_mpi_calls,
        static_report.stats.instrumented,
        static_report.stats.skipped
    );
    for site in &static_report.checklist.sites {
        println!(
            "  line {:>2} {:<14} in-region={} instrument={}",
            site.line, site.name, site.in_hybrid_region, site.instrument
        );
    }

    // 2. Instrumented execution on the simulated substrates.
    let cfg = RunConfig::test(2, 42)
        .with_instrumentation(Instrumentation::home())
        .with_checklist(Arc::new(static_report.checklist.clone()));
    let result = run(&program, &cfg);
    println!("\n--- instrumented run ---");
    println!(
        "{} events recorded, simulated makespan {}",
        result.events_recorded, result.makespan
    );

    // 3. Dynamic phase: lockset + happens-before over monitored variables.
    let races = detect(&result.trace, &DetectorConfig::hybrid())
        .expect("trace straight from the interpreter is well-formed");
    println!("\n--- dynamic phase: {} monitored race(s) ---", races.len());
    for race in &races {
        println!("  {race}");
    }

    // 4. The whole pipeline in one call (multiple seeds, merged report).
    println!("\n--- HOME report ---");
    let report = check(&program, &CheckOptions::default());
    print!("{}", report.render());

    assert!(report.has(ViolationKind::ConcurrentRecv));
}
