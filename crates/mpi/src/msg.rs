//! Messages, envelopes, and matching specifications.

use home_trace::{CommId, Rank};
use std::fmt;
use std::sync::Arc;

/// Wildcard source (`MPI_ANY_SOURCE`).
pub const ANY_SOURCE: i32 = -1;
/// Wildcard tag (`MPI_ANY_TAG`).
pub const ANY_TAG: i32 = -1;

/// Message payload: a shared vector of 64-bit words. Shared so that
/// broadcast-style operations do not copy per receiver.
pub type Payload = Arc<Vec<f64>>;

/// Build a payload from values.
pub fn payload(values: impl Into<Vec<f64>>) -> Payload {
    Arc::new(values.into())
}

/// Source specification of a receive or probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SrcSpec {
    /// Match a specific source rank (communicator-relative).
    Rank(u32),
    /// `MPI_ANY_SOURCE`.
    Any,
}

impl SrcSpec {
    /// Parse the C-style argument (−1 = any).
    pub fn from_i32(v: i32) -> SrcSpec {
        if v < 0 {
            SrcSpec::Any
        } else {
            SrcSpec::Rank(v as u32)
        }
    }

    /// Back to the C-style argument.
    pub fn to_i32(self) -> i32 {
        match self {
            SrcSpec::Rank(r) => r as i32,
            SrcSpec::Any => ANY_SOURCE,
        }
    }

    /// Does a message from `src` satisfy this spec?
    pub fn matches(self, src: u32) -> bool {
        match self {
            SrcSpec::Rank(r) => r == src,
            SrcSpec::Any => true,
        }
    }
}

/// Tag specification of a receive or probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TagSpec {
    /// Match a specific tag.
    Tag(i32),
    /// `MPI_ANY_TAG`.
    Any,
}

impl TagSpec {
    /// Parse the C-style argument (−1 = any).
    pub fn from_i32(v: i32) -> TagSpec {
        if v < 0 {
            TagSpec::Any
        } else {
            TagSpec::Tag(v)
        }
    }

    /// Back to the C-style argument.
    pub fn to_i32(self) -> i32 {
        match self {
            TagSpec::Tag(t) => t,
            TagSpec::Any => ANY_TAG,
        }
    }

    /// Does a message with `tag` satisfy this spec?
    pub fn matches(self, tag: i32) -> bool {
        match self {
            TagSpec::Tag(t) => t == tag,
            TagSpec::Any => true,
        }
    }
}

/// An in-flight or delivered message.
#[derive(Debug, Clone)]
pub struct Message {
    /// Communicator-relative source rank.
    pub src: u32,
    /// World rank of the sender (for diagnostics).
    pub src_world: Rank,
    /// Tag.
    pub tag: i32,
    /// Communicator it was sent on.
    pub comm: CommId,
    /// Payload words.
    pub data: Payload,
    /// Virtual time at which the message is available at the receiver.
    pub available_at_ns: u64,
    /// Per-(src,dst,tag,comm) FIFO sequence, for the non-overtaking rule.
    pub fifo_seq: u64,
    /// Unique message id within the world (used for synchronous-send
    /// rendezvous completion tracking).
    pub uid: u64,
}

impl Message {
    /// Payload length in words (`MPI_Get_count`).
    pub fn count(&self) -> usize {
        self.data.len()
    }

    /// Does this message match a `(src, tag, comm)` receive specification?
    pub fn matches(&self, src: SrcSpec, tag: TagSpec, comm: CommId) -> bool {
        self.comm == comm && src.matches(self.src) && tag.matches(self.tag)
    }
}

/// The result of a completed receive or probe (`MPI_Status`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Status {
    /// Actual source rank (communicator-relative).
    pub source: u32,
    /// Actual tag.
    pub tag: i32,
    /// Payload length in words.
    pub count: usize,
}

impl Status {
    /// The empty status returned by send-request completions.
    pub const fn empty() -> Status {
        Status {
            source: 0,
            tag: 0,
            count: 0,
        }
    }

    /// Build a status from a message.
    pub fn of(msg: &Message) -> Status {
        Status {
            source: msg.src,
            tag: msg.tag,
            count: msg.count(),
        }
    }
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Status(src={}, tag={}, count={})",
            self.source, self.tag, self.count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use home_trace::COMM_WORLD;

    fn msg(src: u32, tag: i32) -> Message {
        Message {
            src,
            src_world: Rank(src),
            tag,
            comm: COMM_WORLD,
            data: payload(vec![1.0, 2.0]),
            available_at_ns: 0,
            fifo_seq: 0,
            uid: 0,
        }
    }

    #[test]
    fn specs_parse_wildcards() {
        assert_eq!(SrcSpec::from_i32(-1), SrcSpec::Any);
        assert_eq!(SrcSpec::from_i32(3), SrcSpec::Rank(3));
        assert_eq!(TagSpec::from_i32(ANY_TAG), TagSpec::Any);
        assert_eq!(TagSpec::from_i32(0), TagSpec::Tag(0));
        assert_eq!(SrcSpec::Any.to_i32(), ANY_SOURCE);
        assert_eq!(TagSpec::Tag(9).to_i32(), 9);
    }

    #[test]
    fn matching_rules() {
        let m = msg(2, 7);
        assert!(m.matches(SrcSpec::Any, TagSpec::Any, COMM_WORLD));
        assert!(m.matches(SrcSpec::Rank(2), TagSpec::Tag(7), COMM_WORLD));
        assert!(!m.matches(SrcSpec::Rank(1), TagSpec::Any, COMM_WORLD));
        assert!(!m.matches(SrcSpec::Any, TagSpec::Tag(8), COMM_WORLD));
        assert!(!m.matches(SrcSpec::Any, TagSpec::Any, CommId(1)));
    }

    #[test]
    fn status_of_message() {
        let m = msg(1, 3);
        let s = Status::of(&m);
        assert_eq!(
            s,
            Status {
                source: 1,
                tag: 3,
                count: 2
            }
        );
        assert!(s.to_string().contains("src=1"));
    }
}
