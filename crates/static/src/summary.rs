//! Bottom-up interprocedural function summaries.
//!
//! Replaces the former string-set fixpoints (`hybrid_context_functions`,
//! `mpi_bearing_functions`, `called_functions`) with one summary object per
//! function, computed over the [`CallGraph`]:
//!
//! * **reachable** — the function is invoked (transitively) from the main
//!   body;
//! * **hybrid_context** — some call chain places it inside an `omp
//!   parallel` region (Algorithm 1's interprocedural marking);
//! * **multi_context** — some call chain reaches it with more than one
//!   thread per region instance (no `master`/`single`/`section` guard on
//!   the way in);
//! * **entry_locks** — the *must* set of critical sections held whenever
//!   the function runs: the intersection over all live call contexts of
//!   the locks held at the call site plus the caller's own entry locks;
//! * **locks_acquired** — the *may* set of critical sections the function
//!   (or anything it calls) can acquire;
//! * **mpi_reachable** — MPI call names reachable through the function.
//!
//! The lattice is finite (sets over the program's lock/function/MPI names)
//! and every pass is a monotone fixpoint, so termination is structural.

use crate::callgraph::{CallEdge, CallGraph};
use home_ir::{Program, Stmt, StmtKind};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Interprocedural facts about one function.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FnSummary {
    /// Function name.
    pub name: String,
    /// Invoked (transitively) from the main body.
    pub reachable: bool,
    /// May execute inside an `omp parallel` region.
    pub hybrid_context: bool,
    /// May execute with more than one thread per region instance.
    pub multi_context: bool,
    /// Critical sections provably held on every invocation.
    pub entry_locks: BTreeSet<String>,
    /// Critical sections the function may acquire (transitively).
    pub locks_acquired: BTreeSet<String>,
    /// MPI call names reachable through the function (transitively).
    pub mpi_reachable: BTreeSet<String>,
}

/// All function summaries plus the call graph they were computed over.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Summaries {
    /// The underlying call graph.
    pub graph: CallGraph,
    map: BTreeMap<String, FnSummary>,
}

static EMPTY_LOCKS: BTreeSet<String> = BTreeSet::new();

impl Summaries {
    /// Compute summaries for every function in `program`.
    pub fn build(program: &Program) -> Summaries {
        let graph = CallGraph::build(program);
        let defined: BTreeSet<&str> = program.functions.iter().map(|f| f.name.as_str()).collect();

        // Direct facts (intraprocedural walk per function body).
        let mut direct_mpi: BTreeMap<&str, BTreeSet<String>> = BTreeMap::new();
        let mut direct_locks: BTreeMap<&str, BTreeSet<String>> = BTreeMap::new();
        for func in &program.functions {
            let (mut mpi, mut locks) = (BTreeSet::new(), BTreeSet::new());
            direct_facts(&func.body, &mut mpi, &mut locks);
            direct_mpi.insert(func.name.as_str(), mpi);
            direct_locks.insert(func.name.as_str(), locks);
        }

        // Reachability: BFS from the main body over defined callees.
        let mut reachable: BTreeSet<&str> = BTreeSet::new();
        let mut frontier: Vec<Option<&str>> = vec![None];
        while let Some(caller) = frontier.pop() {
            for edge in graph.edges_from(caller) {
                if let Some(&name) = defined.get(edge.callee.as_str()) {
                    if reachable.insert(name) {
                        frontier.push(Some(name));
                    }
                }
            }
        }

        // Hybrid / multi context: forward fixpoints over the edges. Hybrid
        // deliberately ignores reachability (matching the historical
        // marking); instrumentation requires both flags anyway.
        let mut hybrid: BTreeSet<&str> = BTreeSet::new();
        let mut multi: BTreeSet<&str> = BTreeSet::new();
        loop {
            let mut changed = false;
            for edge in &graph.edges {
                let Some(&callee) = defined.get(edge.callee.as_str()) else {
                    continue;
                };
                let caller_hybrid = edge.caller.as_deref().is_some_and(|c| hybrid.contains(c));
                let caller_multi = edge.caller.as_deref().is_some_and(|c| multi.contains(c));
                if edge.in_parallel || caller_hybrid {
                    changed |= hybrid.insert(callee);
                }
                if !edge.serialized && (edge.in_parallel || caller_multi) {
                    changed |= multi.insert(callee);
                }
            }
            if !changed {
                break;
            }
        }

        // Entry locks: descending meet-over-contexts fixpoint. `None` is ⊤
        // (no context seen yet); the meet of two contexts is intersection.
        // Only live contexts constrain: the main body, or a reachable
        // caller.
        let mut entry: BTreeMap<&str, Option<BTreeSet<String>>> =
            defined.iter().map(|f| (*f, None)).collect();
        loop {
            let mut changed = false;
            for &f in &defined {
                let mut acc: Option<BTreeSet<String>> = None;
                for edge in graph.callers_of(f) {
                    let ctx = match edge.caller.as_deref() {
                        None => Some(edge.locks_held.clone()),
                        Some(c) if reachable.contains(c) => {
                            entry.get(c).and_then(|e| e.clone()).map(|mut e| {
                                e.extend(edge.locks_held.iter().cloned());
                                e
                            })
                        }
                        Some(_) => continue,
                    };
                    acc = match (acc, ctx) {
                        (a, None) => a,
                        (None, c) => c,
                        (Some(a), Some(c)) => Some(&a & &c),
                    };
                }
                if let Some(new) = acc {
                    let slot = entry.entry(f).or_insert(None);
                    if slot.as_ref() != Some(&new) {
                        // The chain only descends (⊤ → sets shrinking), so
                        // replacing is the meet.
                        *slot = Some(new);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }

        // Transitive may-unions: locks acquired, MPI reachable.
        let mut locks_acq: BTreeMap<&str, BTreeSet<String>> = direct_locks.clone();
        let mut mpi_reach: BTreeMap<&str, BTreeSet<String>> = direct_mpi.clone();
        loop {
            let mut changed = false;
            for edge in &graph.edges {
                let (Some(caller), Some(callee)) = (
                    edge.caller.as_deref().and_then(|c| defined.get(c).copied()),
                    defined.get(edge.callee.as_str()).copied(),
                ) else {
                    continue;
                };
                for table in [&mut locks_acq, &mut mpi_reach] {
                    let from = table.get(callee).cloned().unwrap_or_default();
                    if let Some(into) = table.get_mut(caller) {
                        let before = into.len();
                        into.extend(from);
                        changed |= into.len() != before;
                    }
                }
            }
            if !changed {
                break;
            }
        }

        let map = program
            .functions
            .iter()
            .map(|func| {
                let name = func.name.as_str();
                (
                    func.name.clone(),
                    FnSummary {
                        name: func.name.clone(),
                        reachable: reachable.contains(name),
                        hybrid_context: hybrid.contains(name),
                        multi_context: multi.contains(name),
                        entry_locks: entry.get(name).cloned().flatten().unwrap_or_default(),
                        locks_acquired: locks_acq.get(name).cloned().unwrap_or_default(),
                        mpi_reachable: mpi_reach.get(name).cloned().unwrap_or_default(),
                    },
                )
            })
            .collect();
        Summaries { graph, map }
    }

    /// Summary of `name`, if the function is defined.
    pub fn get(&self, name: &str) -> Option<&FnSummary> {
        self.map.get(name)
    }

    /// May `name` execute inside a parallel region?
    pub fn hybrid(&self, name: &str) -> bool {
        self.get(name).is_some_and(|s| s.hybrid_context)
    }

    /// Is `name` invoked from the main body (transitively)?
    pub fn reachable(&self, name: &str) -> bool {
        self.get(name).is_some_and(|s| s.reachable)
    }

    /// May `name` execute with more than one thread per region instance?
    pub fn multi(&self, name: &str) -> bool {
        self.get(name).is_some_and(|s| s.multi_context)
    }

    /// Locks provably held whenever `name` runs.
    pub fn entry_locks(&self, name: &str) -> &BTreeSet<String> {
        self.get(name).map_or(&EMPTY_LOCKS, |s| &s.entry_locks)
    }

    /// Does `name` (transitively) contain MPI calls?
    pub fn mpi_bearing(&self, name: &str) -> bool {
        self.get(name).is_some_and(|s| !s.mpi_reachable.is_empty())
    }

    /// All summaries, in function-name order.
    pub fn iter(&self) -> impl Iterator<Item = &FnSummary> {
        self.map.values()
    }

    /// The live call-site lock context of `edge`: locks held at the call
    /// site plus the caller's own entry locks.
    pub fn edge_locks(&self, edge: &CallEdge) -> BTreeSet<String> {
        let mut held = edge.locks_held.clone();
        if let Some(caller) = edge.caller.as_deref() {
            held.extend(self.entry_locks(caller).iter().cloned());
        }
        held
    }
}

fn direct_facts(stmts: &[Stmt], mpi: &mut BTreeSet<String>, locks: &mut BTreeSet<String>) {
    for s in stmts {
        match &s.kind {
            StmtKind::Mpi(call) => {
                mpi.insert(call.name().to_string());
            }
            StmtKind::OmpCritical { name, body } => {
                locks.insert(name.clone());
                direct_facts(body, mpi, locks);
            }
            other => {
                for b in other.blocks() {
                    direct_facts(b, mpi, locks);
                }
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use home_ir::parse;

    fn summaries(src: &str) -> Summaries {
        Summaries::build(&parse(src).unwrap())
    }

    #[test]
    fn two_deep_chain_propagates_context_and_locks() {
        let s = summaries(
            r#"
            program chain {
                fn fetch() { mpi_recv(from: 0, tag: 4); }
                fn relay() { call fetch(); }
                mpi_init_thread(multiple);
                omp parallel num_threads(2) {
                    omp critical(net) { call relay(); }
                }
                mpi_finalize();
            }
            "#,
        );
        let fetch = s.get("fetch").unwrap();
        assert!(fetch.reachable && fetch.hybrid_context && fetch.multi_context);
        assert_eq!(
            fetch.entry_locks.iter().collect::<Vec<_>>(),
            vec!["net"],
            "lock held by the outer frame reaches the innermost callee"
        );
        assert!(fetch.mpi_reachable.contains("mpi_recv"));
        let relay = s.get("relay").unwrap();
        assert!(relay.mpi_reachable.contains("mpi_recv"), "transitive MPI");
        assert!(s.mpi_bearing("relay"));
    }

    #[test]
    fn entry_locks_meet_over_contexts() {
        // One call under the lock, one without: the must-set is empty.
        let s = summaries(
            r#"
            program meet {
                fn f() { mpi_barrier(); }
                omp parallel num_threads(2) {
                    omp critical(a) { call f(); }
                    call f();
                }
            }
            "#,
        );
        assert!(s.entry_locks("f").is_empty());
        assert!(s.multi("f"));
    }

    #[test]
    fn serialized_call_sites_do_not_grant_multi_context() {
        let s = summaries(
            r#"
            program ser {
                fn f() { mpi_barrier(); }
                omp parallel num_threads(2) {
                    omp master { call f(); }
                }
            }
            "#,
        );
        assert!(s.hybrid("f"), "master still runs inside the region");
        assert!(!s.multi("f"), "but only one thread per instance");
    }

    #[test]
    fn uncalled_functions_are_unreachable_but_summarized() {
        let s = summaries(
            r#"
            program dead {
                fn ghost() { mpi_barrier(); }
                mpi_init_thread(multiple);
                mpi_finalize();
            }
            "#,
        );
        assert!(!s.reachable("ghost"));
        assert!(s.mpi_bearing("ghost"));
        assert!(!s.reachable("nosuch"), "undefined names are not reachable");
    }

    #[test]
    fn locks_acquired_is_transitive() {
        let s = summaries(
            r#"
            program locks {
                fn inner() { omp critical(b) { compute(1); } }
                fn outer() { call inner(); }
                omp parallel num_threads(2) { call outer(); }
            }
            "#,
        );
        assert!(s.get("outer").unwrap().locks_acquired.contains("b"));
    }
}
