//! A finished trace and query helpers.

use crate::error::HomeError;
use crate::event::{Event, EventKind, MonitoredVar};
use crate::ids::Rank;
use serde::{Deserialize, Error, Serialize, Value};
use std::sync::OnceLock;

/// An immutable, sequence-ordered recording of one run.
///
/// The rank list is computed lazily on first use and cached: traces are
/// immutable after construction, and both the detector's shard planner and
/// the baselines call [`Trace::ranks`] repeatedly, so the sort+dedup pass
/// should happen once per trace, not once per call.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<Event>,
    ranks: OnceLock<Vec<Rank>>,
}

// Hand-written (de)serialization: the cache field is derived state and must
// stay out of the wire format, so the JSON shape is exactly what
// `#[derive]` produced before the cache existed: `{"events": [...]}`.
impl Serialize for Trace {
    fn serialize(&self) -> Value {
        Value::Object(vec![("events".to_string(), self.events.serialize())])
    }
}

impl Deserialize for Trace {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let object = value
            .as_object()
            .ok_or_else(|| Error::expected("object", "Trace", value))?;
        let events: Vec<Event> = serde::field(object, "events", "Trace")?;
        Ok(Trace {
            events,
            ranks: OnceLock::new(),
        })
    }
}

impl Trace {
    /// Build from events (will be sorted by sequence number).
    pub fn from_events(mut events: Vec<Event>) -> Self {
        events.sort_by_key(|e| e.seq);
        Trace {
            events,
            ranks: OnceLock::new(),
        }
    }

    /// All events, in observation order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Ranks that appear in the trace, ascending and deduplicated.
    /// Computed once and cached (the trace is immutable).
    pub fn ranks(&self) -> &[Rank] {
        self.ranks.get_or_init(|| {
            let mut rs: Vec<Rank> = self.events.iter().map(|e| e.rank).collect();
            rs.sort_unstable();
            rs.dedup();
            rs
        })
    }

    /// Events of one rank, in observation order.
    pub fn by_rank(&self, rank: Rank) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(move |e| e.rank == rank)
    }

    /// All monitored-variable writes (the HOME wrappers' output).
    pub fn monitored_writes(&self) -> impl Iterator<Item = &Event> {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::MonitoredWrite { .. }))
    }

    /// Monitored writes touching one specific variable.
    pub fn monitored_writes_of(&self, var: MonitoredVar) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(
            move |e| matches!(&e.kind, EventKind::MonitoredWrite { var: v, .. } if *v == var),
        )
    }

    /// All MPI call-entry events.
    pub fn mpi_calls(&self) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(|e| {
            matches!(
                e.kind,
                EventKind::MpiCall { .. } | EventKind::MpiInit { .. }
            )
        })
    }

    /// Serialize to pretty JSON (for EXPERIMENTS.md artifacts and debugging).
    pub fn to_json(&self) -> String {
        match serde_json::to_string_pretty(self) {
            Ok(json) => json,
            // Every Trace field serializes infallibly (no non-string map
            // keys, no custom Serialize impls that can error).
            Err(_) => unreachable!("trace serialization cannot fail"),
        }
    }

    /// Parse a trace back from JSON. Malformed or truncated input yields a
    /// typed [`HomeError::TraceParse`] carrying the byte offset when the
    /// parser knows it — never a panic.
    pub fn from_json(s: &str) -> Result<Trace, HomeError> {
        serde_json::from_str(s).map_err(|e| HomeError::trace_parse(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{AccessKind, MemLoc, MpiCallKind, MpiCallRecord};
    use crate::ids::{Tid, VarId};

    fn ev(seq: u64, rank: u32, kind: EventKind) -> Event {
        Event {
            seq,
            rank: Rank(rank),
            tid: Tid(0),
            region: None,
            time_ns: 0,
            loc: None,
            kind,
        }
    }

    fn sample() -> Trace {
        Trace::from_events(vec![
            ev(
                2,
                1,
                EventKind::MonitoredWrite {
                    var: MonitoredVar::Tag,
                    call: MpiCallRecord::of_kind(MpiCallKind::Recv),
                },
            ),
            ev(
                0,
                0,
                EventKind::Access {
                    loc: MemLoc::Var(VarId(0)),
                    kind: AccessKind::Read,
                },
            ),
            ev(
                1,
                0,
                EventKind::MpiCall {
                    call: MpiCallRecord::of_kind(MpiCallKind::Send),
                },
            ),
        ])
    }

    #[test]
    fn events_sorted_by_seq() {
        let t = sample();
        let seqs: Vec<u64> = t.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }

    #[test]
    fn rank_queries() {
        let t = sample();
        assert_eq!(t.ranks(), vec![Rank(0), Rank(1)]);
        assert_eq!(t.by_rank(Rank(0)).count(), 2);
        assert_eq!(t.by_rank(Rank(1)).count(), 1);
    }

    #[test]
    fn kind_queries() {
        let t = sample();
        assert_eq!(t.monitored_writes().count(), 1);
        assert_eq!(t.monitored_writes_of(MonitoredVar::Tag).count(), 1);
        assert_eq!(t.monitored_writes_of(MonitoredVar::Src).count(), 0);
        assert_eq!(t.mpi_calls().count(), 1);
    }

    #[test]
    fn truncated_json_is_a_typed_parse_error() {
        let t = sample();
        let json = t.to_json();
        let truncated = &json[..json.len() / 2];
        let err = Trace::from_json(truncated).unwrap_err();
        assert_eq!(err.category(), "trace-parse");
        assert!(err.byte_offset().is_some(), "{err}");
    }

    #[test]
    fn json_roundtrip() {
        let t = sample();
        let json = t.to_json();
        let back = Trace::from_json(&json).unwrap();
        assert_eq!(back.len(), t.len());
        assert_eq!(back.events()[2], t.events()[2]);
    }
}
