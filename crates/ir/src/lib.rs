//! # home-ir — the hybrid MPI/OpenMP mini-language
//!
//! The paper's static phase consumes a compiler front-end's view of a
//! C/Fortran hybrid program. This crate is our substitution: a small C-like
//! language with OpenMP constructs, MPI calls, and an abstract `compute`
//! statement, offered through three equivalent front doors:
//!
//! * [`parse`] — a text DSL (see `parser` docs for the grammar by example);
//! * [`build`] — a Rust builder API used by the workload generators;
//! * the raw [`Program`]/[`Stmt`]/[`Expr`] types with serde support.
//!
//! Statements carry dense [`NodeId`]s, which the CFG (`home-static`) and
//! instrumentation checklist refer back to, and source lines, which
//! violation reports display.

pub mod ast;
pub mod build;
mod lexer;
mod parser;
mod printer;

pub use ast::{
    BinOp, Expr, FuncDef, IrReduceOp, IrThreadLevel, MpiStmt, NodeId, Program, Schedule, Stmt,
    StmtKind,
};
pub use lexer::{lex, LexError, Tok, Token};
pub use parser::{parse, ParseError};
pub use printer::{print_expr, print_program};
