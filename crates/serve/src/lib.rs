//! # home-serve — multi-tenant HBT trace ingest
//!
//! The collector side of the HOME pipeline: long-lived daemons accept
//! recorded HBT streams from many instrumented runs, analyze each with the
//! same per-seed [`Session`](home_core::Session) machinery the `check`
//! pipeline uses, and aggregate verdicts across the fleet.
//!
//! * [`analyze_sections`] / [`SectionSession`] — the shared verdict path:
//!   one streaming session per recorded section, violations keyed by their
//!   canonical [`EmitOrder`](home_core::EmitOrder) position. `home replay`
//!   and `home analyze` call the same functions, so daemon verdicts are
//!   byte-identical to offline ones.
//! * [`Server`] — the Unix-domain-socket daemon behind `home serve`:
//!   thread-per-connection, a counting gate bounding concurrent ingest
//!   sessions (backpressure instead of unbounded memory), cross-run
//!   violation aggregation, JSON `STATUS` fleet reports.
//! * [`submit`] / [`status`] / [`stop`] — the client calls behind
//!   `home submit` and `home serve --status`/`--stop`.
//!
//! Every byte that crosses the socket is untrusted; see the trust-model
//! notes on [`server`](crate::Server) and the bounded HBT readers in
//! `home_stream::hbt`.

// The daemon faces hostile input and must never panic on it; fallible
// paths return typed errors. Tests are exempt.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod analyze;
mod client;
mod protocol;
mod server;

pub use analyze::{
    analyze_section, analyze_section_batched, analyze_sections, analyze_sections_batched,
    analyze_stream, combine_verdicts, violation_identity, KeyedViolation, SectionSession,
    SectionVerdict, TraceOutcome, ViolationIdentity,
};
pub use client::{ping, status, stop, submit};
pub use protocol::{parse_reply, Reply};
pub use server::{AggViolation, Fleet, ServeConfig, Server};
