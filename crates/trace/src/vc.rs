//! Vector clocks for happens-before analysis.
//!
//! Slots are dense thread-segment indices assigned by the analysis (one per
//! `(region, tid)` segment plus one per rank's sequential master segment).
//! The representation auto-grows; missing entries are zero.
//!
//! # Adaptive representation
//!
//! Most clocks a detection run touches are *epochs* in the FastTrack sense:
//! a single nonzero `(slot, value)` component — a fresh segment that has
//! only ever ticked its own slot. Those are kept inline as a two-word
//! [`Repr::Epoch`]; cloning one copies two machine words instead of a heap
//! vector. The clock lazily promotes to the dense `Vec<u64>` form the first
//! time a second slot becomes nonzero. All public operations are
//! representation-independent: `a == b`, `a.leq(&b)`, hashing and the wire
//! format answer the same regardless of which form each side is in.

use serde::{Deserialize, Error, Serialize, Value};
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

#[derive(Debug, Clone)]
enum Repr {
    /// At most one nonzero component, `slot ↦ value` (the zero clock when
    /// `value == 0`).
    Epoch { slot: u32, value: u64 },
    /// Dense component vector (may carry interior or trailing zeros).
    Dense(Vec<u64>),
}

/// A vector clock: a map from thread-segment slot to logical time.
#[derive(Debug, Clone)]
pub struct VectorClock {
    repr: Repr,
}

impl Default for VectorClock {
    fn default() -> Self {
        VectorClock {
            repr: Repr::Epoch { slot: 0, value: 0 },
        }
    }
}

impl VectorClock {
    /// The zero clock.
    pub fn new() -> Self {
        VectorClock::default()
    }

    /// A clock with one nonzero component (`slot` ↦ `value`).
    pub fn singleton(slot: usize, value: u64) -> Self {
        match u32::try_from(slot) {
            Ok(slot) => VectorClock {
                repr: Repr::Epoch { slot, value },
            },
            Err(_) => {
                let mut vc = VectorClock::new();
                vc.set(slot, value);
                vc
            }
        }
    }

    /// Component for `slot` (zero if absent).
    #[inline]
    pub fn get(&self, slot: usize) -> u64 {
        match &self.repr {
            Repr::Epoch { slot: s, value } => {
                if *s as usize == slot {
                    *value
                } else {
                    0
                }
            }
            Repr::Dense(entries) => entries.get(slot).copied().unwrap_or(0),
        }
    }

    /// Switch to the dense representation, returning its entry vector.
    fn promote(&mut self) -> &mut Vec<u64> {
        if let Repr::Epoch { slot, value } = self.repr {
            let mut entries = Vec::new();
            if value > 0 {
                entries.resize(slot as usize + 1, 0);
                entries[slot as usize] = value;
            }
            self.repr = Repr::Dense(entries);
        }
        match &mut self.repr {
            Repr::Dense(entries) => entries,
            Repr::Epoch { .. } => unreachable!("promote just installed Dense"),
        }
    }

    /// Set the component for `slot`.
    pub fn set(&mut self, slot: usize, value: u64) {
        if let Repr::Epoch { slot: s, value: v } = &mut self.repr {
            if *s as usize == slot {
                *v = value;
                return;
            }
            if *v == 0 {
                if let Ok(slot) = u32::try_from(slot) {
                    *s = slot;
                    *v = value;
                    return;
                }
            }
            if value == 0 {
                // Writing a zero to an absent slot leaves the map unchanged.
                return;
            }
        }
        let entries = self.promote();
        if entries.len() <= slot {
            entries.resize(slot + 1, 0);
        }
        entries[slot] = value;
    }

    /// Increment the component for `slot` by one, returning the new value —
    /// a single in-place increment with one resize check.
    pub fn tick(&mut self, slot: usize) -> u64 {
        if let Repr::Epoch { slot: s, value: v } = &mut self.repr {
            if *s as usize == slot {
                *v += 1;
                return *v;
            }
            if *v == 0 {
                if let Ok(slot) = u32::try_from(slot) {
                    *s = slot;
                    *v = 1;
                    return 1;
                }
            }
        }
        let entries = self.promote();
        if entries.len() <= slot {
            entries.resize(slot + 1, 0);
        }
        entries[slot] += 1;
        entries[slot]
    }

    /// Pointwise maximum with `other` (the classic VC join).
    pub fn join(&mut self, other: &VectorClock) {
        match &other.repr {
            Repr::Epoch { value: 0, .. } => {} // joining the zero clock
            Repr::Epoch { slot, value } => {
                let (oslot, ov) = (*slot, *value);
                match &mut self.repr {
                    Repr::Epoch { slot: s, value: v } if *v == 0 => {
                        *s = oslot;
                        *v = ov;
                    }
                    Repr::Epoch { slot: s, value: v } if *s == oslot => {
                        if ov > *v {
                            *v = ov;
                        }
                    }
                    _ => {
                        let entries = self.promote();
                        let oslot = oslot as usize;
                        if entries.len() <= oslot {
                            entries.resize(oslot + 1, 0);
                        }
                        if ov > entries[oslot] {
                            entries[oslot] = ov;
                        }
                    }
                }
            }
            Repr::Dense(o) => {
                if let Repr::Epoch { value: 0, .. } = self.repr {
                    self.repr = Repr::Dense(o.clone());
                    return;
                }
                let entries = self.promote();
                if entries.len() < o.len() {
                    entries.resize(o.len(), 0);
                }
                for (e, &v) in entries.iter_mut().zip(o.iter()) {
                    if v > *e {
                        *e = v;
                    }
                }
            }
        }
    }

    /// One fused comparison pass: for each side, does it exceed the other in
    /// some component? `(false, false)` ⇒ equal, `(false, true)` ⇒ strictly
    /// less, `(true, false)` ⇒ strictly greater, `(true, true)` ⇒
    /// concurrent.
    fn dominance(&self, other: &VectorClock) -> (bool, bool) {
        match (&self.repr, &other.repr) {
            (Repr::Epoch { slot: a, value: va }, Repr::Epoch { slot: b, value: vb }) => {
                if a == b || *va == 0 || *vb == 0 {
                    // Comparable on a single axis.
                    let (x, y) = if a == b {
                        (*va, *vb)
                    } else if *va == 0 {
                        (0, *vb)
                    } else {
                        (*va, 0)
                    };
                    (x > y, y > x)
                } else {
                    // Two distinct nonzero slots: each exceeds the other's
                    // zero component.
                    (true, true)
                }
            }
            (Repr::Epoch { slot, value }, Repr::Dense(o)) => {
                let s = *slot as usize;
                let at = o.get(s).copied().unwrap_or(0);
                let self_exceeds = *value > at;
                let other_exceeds =
                    at > *value || o.iter().enumerate().any(|(i, &v)| v > 0 && i != s);
                (self_exceeds, other_exceeds)
            }
            (Repr::Dense(_), Repr::Epoch { .. }) => {
                let (o, s) = other.dominance(self);
                (s, o)
            }
            (Repr::Dense(a), Repr::Dense(b)) => {
                let mut self_exceeds = false;
                let mut other_exceeds = false;
                for i in 0..a.len().max(b.len()) {
                    let x = a.get(i).copied().unwrap_or(0);
                    let y = b.get(i).copied().unwrap_or(0);
                    if x > y {
                        self_exceeds = true;
                        if other_exceeds {
                            break;
                        }
                    } else if y > x {
                        other_exceeds = true;
                        if self_exceeds {
                            break;
                        }
                    }
                }
                (self_exceeds, other_exceeds)
            }
        }
    }

    /// `self ≤ other` in the pointwise partial order: every component of
    /// `self` is ≤ the corresponding component of `other`.
    pub fn leq(&self, other: &VectorClock) -> bool {
        !self.dominance(other).0
    }

    /// Happens-before: `self ≤ other` and `self ≠ other`.
    pub fn happens_before(&self, other: &VectorClock) -> bool {
        let (self_exceeds, other_exceeds) = self.dominance(other);
        !self_exceeds && other_exceeds
    }

    /// Neither clock happens-before the other — the events are concurrent.
    pub fn concurrent_with(&self, other: &VectorClock) -> bool {
        let (self_exceeds, other_exceeds) = self.dominance(other);
        self_exceeds && other_exceeds
    }

    /// Partial-order comparison (`None` for concurrent clocks).
    pub fn partial_cmp_vc(&self, other: &VectorClock) -> Option<Ordering> {
        match self.dominance(other) {
            (false, false) => Some(Ordering::Equal),
            (false, true) => Some(Ordering::Less),
            (true, false) => Some(Ordering::Greater),
            (true, true) => None,
        }
    }

    /// Number of allocated components (trailing zeros excluded is not
    /// guaranteed; this is the raw storage width).
    pub fn width(&self) -> usize {
        match &self.repr {
            Repr::Epoch { value: 0, .. } => 0,
            Repr::Epoch { slot, .. } => *slot as usize + 1,
            Repr::Dense(entries) => entries.len(),
        }
    }

    /// Iterate over `(slot, value)` pairs with nonzero value, ascending.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        static EMPTY: [u64; 0] = [];
        let (epoch, dense) = match &self.repr {
            Repr::Epoch { slot, value } if *value > 0 => {
                (Some((*slot as usize, *value)), EMPTY.iter())
            }
            Repr::Epoch { .. } => (None, EMPTY.iter()),
            Repr::Dense(entries) => (None, entries.iter()),
        };
        epoch.into_iter().chain(
            dense
                .enumerate()
                .filter(|(_, &v)| v > 0)
                .map(|(i, &v)| (i, v)),
        )
    }

    /// Densify into a component vector (used by the wire format).
    fn to_entries(&self) -> Vec<u64> {
        match &self.repr {
            Repr::Epoch { value: 0, .. } => Vec::new(),
            Repr::Epoch { slot, value } => {
                let mut entries = vec![0; *slot as usize + 1];
                entries[*slot as usize] = *value;
                entries
            }
            Repr::Dense(entries) => entries.clone(),
        }
    }

    /// Build from a dense component vector, choosing the small
    /// representation when at most one component is nonzero.
    fn from_entries(entries: Vec<u64>) -> Self {
        let mut nonzero = entries.iter().enumerate().filter(|(_, &v)| v > 0);
        match (nonzero.next(), nonzero.next()) {
            (None, _) => VectorClock::new(),
            (Some((slot, &value)), None) => VectorClock::singleton(slot, value),
            _ => VectorClock {
                repr: Repr::Dense(entries),
            },
        }
    }
}

/// Equality is semantic (same slot ↦ value map), independent of both the
/// representation and any stored trailing zeros.
impl PartialEq for VectorClock {
    fn eq(&self, other: &Self) -> bool {
        self.dominance(other) == (false, false)
    }
}

impl Eq for VectorClock {}

impl Hash for VectorClock {
    fn hash<H: Hasher>(&self, state: &mut H) {
        for (slot, value) in self.iter_nonzero() {
            slot.hash(state);
            value.hash(state);
        }
    }
}

// Hand-written (de)serialization: the wire shape is exactly what `#[derive]`
// produced on the old dense-only struct — `{"entries": [...]}` — so traces
// and reports are unaffected by the representation split.
impl Serialize for VectorClock {
    fn serialize(&self) -> Value {
        Value::Object(vec![("entries".to_string(), self.to_entries().serialize())])
    }
}

impl Deserialize for VectorClock {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let object = value
            .as_object()
            .ok_or_else(|| Error::expected("object", "VectorClock", value))?;
        let entries: Vec<u64> = serde::field(object, "entries", "VectorClock")?;
        Ok(VectorClock::from_entries(entries))
    }
}

impl fmt::Display for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, (slot, v)) in self.iter_nonzero().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{slot}:{v}")?;
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_leq_everything() {
        let z = VectorClock::new();
        let mut a = VectorClock::new();
        a.tick(3);
        assert!(z.leq(&a));
        assert!(z.happens_before(&a));
        assert!(!a.leq(&z));
    }

    #[test]
    fn concurrent_clocks() {
        let a = VectorClock::singleton(0, 1);
        let b = VectorClock::singleton(1, 1);
        assert!(a.concurrent_with(&b));
        assert!(b.concurrent_with(&a));
        assert_eq!(a.partial_cmp_vc(&b), None);
    }

    #[test]
    fn join_is_lub() {
        let a = VectorClock::singleton(0, 3);
        let b = VectorClock::singleton(1, 5);
        let mut j = a.clone();
        j.join(&b);
        assert!(a.leq(&j));
        assert!(b.leq(&j));
        assert_eq!(j.get(0), 3);
        assert_eq!(j.get(1), 5);
    }

    #[test]
    fn tick_monotone() {
        let mut a = VectorClock::new();
        let before = a.clone();
        a.tick(2);
        assert!(before.happens_before(&a));
        assert_eq!(a.get(2), 1);
        assert_eq!(a.tick(2), 2);
    }

    #[test]
    fn partial_cmp_cases() {
        let mut a = VectorClock::new();
        a.set(0, 1);
        let mut b = a.clone();
        b.set(1, 4);
        assert_eq!(a.partial_cmp_vc(&b), Some(Ordering::Less));
        assert_eq!(b.partial_cmp_vc(&a), Some(Ordering::Greater));
        assert_eq!(a.partial_cmp_vc(&a.clone()), Some(Ordering::Equal));
    }

    #[test]
    fn growth_treats_missing_as_zero() {
        let short = VectorClock::singleton(0, 1);
        let mut long = VectorClock::singleton(5, 1);
        long.set(0, 1);
        assert!(short.leq(&long));
    }

    #[test]
    fn display_nonzero_only() {
        let mut a = VectorClock::new();
        a.set(1, 2);
        a.set(4, 7);
        assert_eq!(a.to_string(), "⟨1:2, 4:7⟩");
    }

    #[test]
    fn epoch_stays_small_until_second_slot() {
        let mut a = VectorClock::new();
        a.tick(3);
        a.tick(3);
        assert!(matches!(a.repr, Repr::Epoch { slot: 3, value: 2 }));
        a.tick(1);
        assert!(matches!(a.repr, Repr::Dense(_)));
        assert_eq!(a.get(3), 2);
        assert_eq!(a.get(1), 1);
    }

    #[test]
    fn equality_is_representation_independent() {
        // Same logical map through an epoch and through a dense detour.
        let epoch = VectorClock::singleton(2, 9);
        let mut dense = VectorClock::new();
        dense.set(2, 9);
        dense.set(5, 1); // second nonzero slot promotes to Dense
        dense.set(5, 0); // leaves Dense with trailing zeros
        assert!(matches!(dense.repr, Repr::Dense(_)));
        assert_eq!(epoch, dense);
        assert_eq!(epoch.partial_cmp_vc(&dense), Some(Ordering::Equal));
        let mut h1 = std::collections::hash_map::DefaultHasher::new();
        let mut h2 = std::collections::hash_map::DefaultHasher::new();
        epoch.hash(&mut h1);
        dense.hash(&mut h2);
        assert_eq!(
            std::hash::Hasher::finish(&h1),
            std::hash::Hasher::finish(&h2)
        );
    }

    #[test]
    fn serde_wire_shape_is_dense_entries() {
        let vc = VectorClock::singleton(2, 5);
        let v = vc.serialize();
        let obj = v.as_object().unwrap();
        assert_eq!(obj[0].0, "entries");
        let entries: Vec<u64> = serde::field(obj, "entries", "VectorClock").unwrap();
        assert_eq!(entries, vec![0, 0, 5]);
        let back = VectorClock::deserialize(&v).unwrap();
        assert_eq!(back, vc);
        assert!(matches!(back.repr, Repr::Epoch { slot: 2, value: 5 }));
    }
}
