//! The three checking tools of the paper's evaluation, behind one
//! interface: HOME, Marmot, and an Intel-Thread-Checker (ITC) model.

use crate::marmot::manifest_races;
use home_core::{match_violations, CheckOptions, HomeReport, SeedRun, SeedStatus};
use home_dynamic::{detect, DetectorConfig, DetectorMode};
use home_interp::{run, Instrumentation, RunConfig};
use home_ir::Program;
use home_sched::SimTime;
use home_static::analyze;
use home_trace::EventFilter;
use std::sync::Arc;

/// Which checking tool to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tool {
    /// No tool — the uninstrumented baseline (overhead reference).
    Base,
    /// The paper's tool: static filter + selective wrappers + hybrid
    /// lockset/HB detection.
    Home,
    /// Marmot: everything wrapped, a central debug-process round trip per
    /// MPI call, detection only of *manifest* concurrency.
    Marmot,
    /// Intel Thread Checker: binary instrumentation of every shared memory
    /// access, happens-before without `omp critical` awareness, probes not
    /// wrapped.
    Itc,
}

impl Tool {
    /// All four, in the figures' legend order.
    pub const ALL: [Tool; 4] = [Tool::Base, Tool::Home, Tool::Marmot, Tool::Itc];

    /// Display label used in the report tables.
    pub fn label(self) -> &'static str {
        match self {
            Tool::Base => "Base",
            Tool::Home => "HOME",
            Tool::Marmot => "MARMOT",
            Tool::Itc => "ITC",
        }
    }

    /// The instrumentation profile this tool runs with at the default
    /// two-process scale. See [`Tool::instrumentation_scaled`] for the cost
    /// model behind Figures 4–7.
    pub fn instrumentation(self) -> Instrumentation {
        self.instrumentation_scaled(2)
    }

    /// The cost model behind Figures 4–7, at a given process count:
    ///
    /// * HOME: selective wrapper stores plus a mild (×1.15) Pin-style
    ///   slowdown on instrumented compute;
    /// * Marmot: wrapper everywhere plus a central debug-process round trip
    ///   per MPI call whose latency grows with the number of processes the
    ///   manager serializes;
    /// * ITC: whole-program binary instrumentation (×2.9 on compute) plus a
    ///   fixed analysis cost per MPI call.
    pub fn instrumentation_scaled(self, nprocs: usize) -> Instrumentation {
        match self {
            Tool::Base => Instrumentation::base(),
            Tool::Home => Instrumentation::home(),
            Tool::Marmot => Instrumentation {
                name: "marmot".into(),
                filter: EventFilter::MONITORED_AND_SYNC,
                selective: false,
                wrap_probe: true,
                event_cost: SimTime::from_micros(1),
                mpi_call_extra: SimTime::from_nanos(3_500 * nprocs as u64),
                compute_slowdown: 1.13,
            },
            Tool::Itc => Instrumentation {
                name: "itc".into(),
                filter: EventFilter::ALL,
                selective: false,
                wrap_probe: false,
                event_cost: SimTime::from_micros(1),
                mpi_call_extra: SimTime::from_micros(150),
                compute_slowdown: 2.9,
            },
        }
    }

    /// The dynamic-analysis configuration this tool uses (`None` for
    /// Marmot, which uses manifest-only matching instead of a detector).
    pub fn detector(self) -> Option<DetectorConfig> {
        match self {
            Tool::Base => None,
            Tool::Home => Some(DetectorConfig::hybrid()),
            Tool::Marmot => None,
            Tool::Itc => Some(DetectorConfig {
                mode: DetectorMode::Hybrid,
                // The paper: ITC "cannot recognize omp critical directives
                // correctly" — no lock edges, no locksets.
                ignore_locks: true,
                ..DetectorConfig::hybrid()
            }),
        }
    }
}

/// Run `tool` on `program` and produce its violation report.
///
/// All tools share the interpreter and the rule matcher; they differ in
/// instrumentation scope (what gets into the trace), detection engine
/// (predictive vs manifest-only), and cost profile.
pub fn run_tool(tool: Tool, program: &Program, options: &CheckOptions) -> HomeReport {
    match tool {
        Tool::Home => {
            let mut opts = options.clone();
            opts.instrumentation = Instrumentation::home();
            opts.detector = DetectorConfig::hybrid();
            home_core::check(program, &opts)
        }
        Tool::Base => HomeReport::default(),
        Tool::Marmot | Tool::Itc => {
            let static_report = analyze(program);
            let checklist = Arc::new(static_report.checklist.clone());
            let mut report = HomeReport {
                static_stats: static_report.stats,
                ..HomeReport::default()
            };
            for &seed in &options.seeds {
                let mut cfg = RunConfig::test(options.nprocs, seed)
                    .with_instrumentation(tool.instrumentation())
                    .with_checklist(Arc::clone(&checklist));
                cfg.threads_per_proc = options.threads_per_proc;
                cfg.sched = options_sched(options, seed);
                let result = run(program, &cfg);
                let races = match tool {
                    Tool::Marmot => manifest_races(&result.trace),
                    Tool::Itc => {
                        let detector = tool.detector().unwrap_or_else(DetectorConfig::hybrid);
                        match detect(&result.trace, &detector) {
                            Ok(r) => r,
                            // A detector failure poisons only this seed:
                            // record it and keep the remaining seeds.
                            Err(e) => {
                                report.partial = true;
                                report.seed_runs.push(SeedRun {
                                    seed,
                                    status: SeedStatus::Failed {
                                        error: e.to_string(),
                                    },
                                });
                                continue;
                            }
                        }
                    }
                    _ => unreachable!(),
                };
                let violations = match_violations(&result.trace, &races, &result.mpi_errors);
                report.seed_runs.push(SeedRun {
                    seed,
                    status: SeedStatus::Ok {
                        events: result.events_recorded,
                        races: races.len(),
                        violations: violations.len(),
                    },
                });
                report.runs += 1;
                report.total_events += result.events_recorded;
                if let Some(d) = result.deadlock {
                    report.deadlocks.push((seed, d));
                }
                report.incidents.extend(result.mpi_errors);
                report.races.extend(races);
                report.violations.extend(violations);
            }
            let mut seen = std::collections::BTreeSet::new();
            report
                .violations
                .retain(|v| seen.insert((v.kind, v.rank, v.locations.clone())));
            report
        }
    }
}

fn options_sched(options: &CheckOptions, seed: u64) -> home_sched::SchedConfig {
    // Baselines honour the same scheduling mode HOME uses in CheckOptions:
    // derive from the detector-independent defaults (deterministic random),
    // seeded per run.
    let mut sched = home_sched::SchedConfig::deterministic(seed);
    sched.policy = options.sched_policy;
    sched
}

#[cfg(test)]
mod tests {
    use super::*;
    use home_core::ViolationKind;
    use home_ir::parse;

    fn opts() -> CheckOptions {
        CheckOptions::default()
    }

    #[test]
    fn tool_labels_and_profiles() {
        assert_eq!(Tool::Home.label(), "HOME");
        assert_eq!(Tool::Itc.instrumentation().name, "itc");
        assert!(Tool::Itc.instrumentation().filter.accesses);
        assert!(!Tool::Itc.instrumentation().wrap_probe);
        assert!(Tool::Marmot.instrumentation().mpi_call_extra > SimTime::ZERO);
        assert!(Tool::Base.detector().is_none());
    }

    #[test]
    fn itc_misses_probe_violations() {
        let src = r#"
            program probe {
                mpi_init_thread(multiple);
                if (rank == 0) {
                    mpi_send(to: 1, tag: 3, count: 1);
                    mpi_send(to: 1, tag: 3, count: 1);
                }
                if (rank == 1) {
                    omp parallel num_threads(2) {
                        mpi_probe(from: 0, tag: 3);
                        mpi_recv(from: 0, tag: 3);
                    }
                }
                mpi_finalize();
            }
        "#;
        let p = parse(src).unwrap();
        let home = run_tool(Tool::Home, &p, &opts());
        let itc = run_tool(Tool::Itc, &p, &opts());
        assert!(home.has(ViolationKind::Probe), "{}", home.render());
        assert!(
            !itc.has(ViolationKind::Probe),
            "ITC does not wrap probes: {}",
            itc.render()
        );
    }

    #[test]
    fn itc_false_positive_on_critical_protected_calls() {
        // Two threads receive with colliding envelopes but under one
        // omp critical — serialized, hence safe. HOME's lockset analysis
        // sees the common lock; ITC (critical-blind) flags it.
        let src = r#"
            program fp {
                mpi_init_thread(multiple);
                if (rank == 0) {
                    mpi_send(to: 1, tag: 0, count: 1);
                    mpi_send(to: 1, tag: 0, count: 1);
                }
                if (rank == 1) {
                    omp parallel num_threads(2) {
                        omp critical(recv_cs) {
                            mpi_recv(from: 0, tag: 0);
                        }
                    }
                }
                mpi_finalize();
            }
        "#;
        let p = parse(src).unwrap();
        let home = run_tool(Tool::Home, &p, &opts());
        let itc = run_tool(Tool::Itc, &p, &opts());
        assert!(
            !home.has(ViolationKind::ConcurrentRecv),
            "HOME respects critical: {}",
            home.render()
        );
        assert!(
            itc.has(ViolationKind::ConcurrentRecv),
            "ITC's critical blindness produces the false positive: {}",
            itc.render()
        );
    }

    #[test]
    fn marmot_detects_manifest_but_misses_latent_races() {
        // Latent: thread 1 computes a long time before its racy recv, so
        // under time-faithful scheduling the two receives serialize in the
        // observed run. HOME (predictive lockset/HB) still flags; Marmot
        // (manifest-only) misses.
        let src = r#"
            program latent {
                mpi_init_thread(multiple);
                if (rank == 0) {
                    mpi_send(to: 1, tag: 0, count: 1);
                    mpi_send(to: 1, tag: 0, count: 1);
                }
                if (rank == 1) {
                    omp parallel num_threads(2) {
                        if (tid == 0) {
                            mpi_recv(from: 0, tag: 0);
                            mpi_send(to: 0, tag: 99, count: 1);
                        }
                        if (tid == 1) {
                            compute(100000000);
                            mpi_recv(from: 0, tag: 0);
                        }
                    }
                }
                if (rank == 0) { mpi_recv(from: 1, tag: 99); }
                mpi_finalize();
            }
        "#;
        let p = parse(src).unwrap();
        let mut options = opts();
        options.sched_policy = home_sched::SchedPolicy::EarliestClockFirst;
        let home = run_tool(Tool::Home, &p, &options);
        let marmot = run_tool(Tool::Marmot, &p, &options);
        assert!(
            home.has(ViolationKind::ConcurrentRecv),
            "HOME predicts the latent race: {}",
            home.render()
        );
        assert!(
            !marmot.has(ViolationKind::ConcurrentRecv),
            "Marmot only sees manifest races: {}",
            marmot.render()
        );
    }

    #[test]
    fn marmot_detects_manifest_concurrent_recv() {
        // Symmetric concurrent receives: both threads sit in recv at the
        // same time in essentially every schedule → manifest → detected.
        let src = r#"
            program manifest {
                mpi_init_thread(multiple);
                if (rank == 0) {
                    mpi_send(to: 1, tag: 0, count: 1);
                    mpi_send(to: 1, tag: 0, count: 1);
                }
                if (rank == 1) {
                    omp parallel num_threads(2) {
                        mpi_recv(from: 0, tag: 0);
                    }
                }
                mpi_finalize();
            }
        "#;
        let p = parse(src).unwrap();
        let marmot = run_tool(Tool::Marmot, &p, &opts());
        assert!(
            marmot.has(ViolationKind::ConcurrentRecv),
            "{}",
            marmot.render()
        );
    }
}
