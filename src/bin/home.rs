//! `home` — the command-line front end of the checker.
//!
//! ```text
//! home check   <file.hmp> [--procs N] [--threads N] [--seeds a,b,c] [--faithful]
//! home static  <file.hmp>
//! home run     <file.hmp> [--procs N] [--threads N] [--seed S] [--tool base|home|marmot|itc]
//!                          [--trace-out trace.json]
//! home analyze <trace.json>
//! home fmt     <file.hmp>
//! ```
//!
//! * `check`   — the full HOME pipeline; exits nonzero if violations found.
//! * `static`  — compile-time phase only: per-site instrumentation decisions.
//! * `run`     — execute once on the simulators and report timing/events;
//!   `--trace-out` dumps the recorded event trace as JSON.
//! * `analyze` — offline mode: run the dynamic phase + rule matching over a
//!   previously dumped trace (the paper's offline analysis).
//! * `fmt`     — parse and reprint in canonical form.

use home::baselines::Tool;
use home::prelude::*;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, file) = match (args.first(), args.get(1)) {
        (Some(c), Some(f)) if !f.starts_with("--") => (c.as_str(), f.as_str()),
        _ => {
            eprintln!("usage: home <check|static|run|fmt> <file.hmp> [options]");
            eprintln!("run `home help` for details");
            return ExitCode::from(2);
        }
    };

    let source = match std::fs::read_to_string(file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("home: cannot read {file}: {e}");
            return ExitCode::from(2);
        }
    };
    if cmd == "analyze" {
        return cmd_analyze(&source);
    }
    let program = match parse(&source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("home: {file}: {e}");
            return ExitCode::from(2);
        }
    };

    match cmd {
        "check" => cmd_check(&program, &args),
        "static" => cmd_static(&program),
        "run" => cmd_run(&program, &args),
        "fmt" => {
            print!("{}", print_program(&program));
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("home: unknown command `{other}`");
            ExitCode::from(2)
        }
    }
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn usize_flag(args: &[String], name: &str, default: usize) -> usize {
    flag_value(args, name)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn cmd_check(program: &Program, args: &[String]) -> ExitCode {
    let mut options = CheckOptions::new(
        usize_flag(args, "--procs", 2),
        usize_flag(args, "--threads", 2),
    );
    if let Some(seeds) = flag_value(args, "--seeds") {
        options.seeds = seeds
            .split(',')
            .filter_map(|s| s.trim().parse().ok())
            .collect();
        if options.seeds.is_empty() {
            eprintln!("home: --seeds needs a comma-separated list of integers");
            return ExitCode::from(2);
        }
    }
    if args.iter().any(|a| a == "--faithful") {
        options.sched_policy = SchedPolicy::EarliestClockFirst;
    }
    let report = check(program, &options);
    print!("{}", report.render());
    if report.violations.is_empty() && report.deadlocks.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_static(program: &Program) -> ExitCode {
    let report = analyze(program);
    println!(
        "{} MPI call sites, {} instrumented, {} skipped, {} unreachable",
        report.stats.total_mpi_calls,
        report.stats.instrumented,
        report.stats.skipped,
        report.stats.unreachable
    );
    println!(
        "{} parallel region(s), {} error-free",
        report.stats.regions, report.stats.error_free_regions
    );
    for site in &report.checklist.sites {
        let marks = [
            site.instrument.then_some("instrument"),
            site.in_hybrid_region.then_some("hybrid"),
            (!site.reachable).then_some("unreachable"),
            (site.tag_thread_distinct == Some(true)).then_some("tag=f(tid)"),
            site.is_collective.then_some("collective"),
        ]
        .into_iter()
        .flatten()
        .collect::<Vec<_>>()
        .join(", ");
        println!("  line {:>3}  {:<16} [{marks}]", site.line, site.name);
    }
    if !report.checklist.monitored_vars.is_empty() {
        println!("monitored variables: {}", report.checklist.monitored_vars.join(", "));
    }
    ExitCode::SUCCESS
}

fn cmd_analyze(trace_json: &str) -> ExitCode {
    let trace = match home::trace::Trace::from_json(trace_json) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("home: invalid trace JSON: {e}");
            return ExitCode::from(2);
        }
    };
    let races = home::dynamic::detect(&trace, &home::dynamic::DetectorConfig::hybrid());
    let violations = home::core::match_violations(&trace, &races, &[]);
    println!(
        "offline analysis: {} events, {} monitored race(s), {} violation(s)",
        trace.len(),
        races.len(),
        violations.len()
    );
    for v in &violations {
        println!("  - {v}");
    }
    if violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_run(program: &Program, args: &[String]) -> ExitCode {
    let nprocs = usize_flag(args, "--procs", 2);
    let tool = match flag_value(args, "--tool").unwrap_or("base") {
        "base" => Tool::Base,
        "home" => Tool::Home,
        "marmot" => Tool::Marmot,
        "itc" => Tool::Itc,
        other => {
            eprintln!("home: unknown tool `{other}`");
            return ExitCode::from(2);
        }
    };
    let checklist = std::sync::Arc::new(analyze(program).checklist.clone());
    let mut cfg = RunConfig::cluster(nprocs, usize_flag(args, "--seed", 7) as u64)
        .with_instrumentation(tool.instrumentation_scaled(nprocs))
        .with_checklist(checklist);
    cfg.threads_per_proc = usize_flag(args, "--threads", 2);
    let result = run(program, &cfg);
    println!(
        "tool={} procs={nprocs} threads={} simulated time {}  events {}",
        result.tool, cfg.threads_per_proc, result.makespan, result.events_recorded
    );
    for i in &result.mpi_errors {
        println!("incident: rank {} line {} {}: {}", i.rank, i.line, i.call, i.error);
    }
    for (r, e) in &result.runtime_errors {
        println!("runtime error: rank {r}: {e}");
    }
    if let Some(path) = flag_value(args, "--trace-out") {
        match std::fs::write(path, result.trace.to_json()) {
            Ok(()) => println!("trace written to {path}"),
            Err(e) => {
                eprintln!("home: cannot write {path}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    match &result.deadlock {
        Some(d) => {
            println!("DEADLOCK: {d}");
            ExitCode::FAILURE
        }
        None => ExitCode::SUCCESS,
    }
}
