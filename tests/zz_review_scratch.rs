use home::stream::{HBT_MAGIC, HBT_V2};

fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 { buf.push(b); break; }
        buf.push(b | 0x80);
    }
}

fn rec(out: &mut Vec<u8>, payload: &[u8]) {
    put_varint(out, payload.len() as u64);
    out.extend_from_slice(payload);
}

// Stream A: empty anonymous frame + index + empty manifest.
fn stream_a() -> Vec<u8> {
    let mut b = Vec::new();
    b.extend_from_slice(&HBT_MAGIC);
    b.push(HBT_V2);
    // frame: kind 5, flags 0, events 0, incidents 0, raw_len 0
    rec(&mut b, &[5, 0, 0, 0, 0]);
    // index: kind 6, count 1, entry flags 0, offset 5, events 0, incidents 0, raw_len 0
    rec(&mut b, &[6, 1, 0, 5, 0, 0, 0]);
    // manifest: kind 4, nsections 0
    rec(&mut b, &[4, 0]);
    b.push(0);
    b
}

// Stream B: same but manifest declares one anonymous section.
fn stream_b() -> Vec<u8> {
    let mut b = Vec::new();
    b.extend_from_slice(&HBT_MAGIC);
    b.push(HBT_V2);
    rec(&mut b, &[5, 0, 0, 0, 0]);
    rec(&mut b, &[6, 1, 0, 5, 0, 0, 0]);
    // manifest: kind 4, nsections 1, flag 0 (= no seed / anonymous)
    rec(&mut b, &[4, 1, 0]);
    b.push(0);
    b
}

#[test]
fn review_divergence_stream_a() {
    let bytes = stream_a();
    let serial = home::stream::decode_sections(&bytes);
    let scan = home::stream::scan_layout(&bytes);
    eprintln!("A serial: {:?}", serial.as_ref().map(|s| s.len()).map_err(|e| e.to_string()));
    eprintln!("A scan:   {:?}", scan.as_ref().map(|l| l.as_ref().map(|l| l.frames.len())).map_err(|e| e.to_string()));
    let j1 = home::core::decode_trace(&bytes, 1);
    let j4 = home::core::decode_trace(&bytes, 4);
    eprintln!("A jobs=1: {:?}", j1.as_ref().map(|s| s.len()).map_err(|e| e.to_string()));
    eprintln!("A jobs=4: {:?}", j4.as_ref().map(|s| s.len()).map_err(|e| e.to_string()));
    assert_eq!(j1.is_ok(), j4.is_ok(), "verdict diverges between jobs=1 and jobs=4");
}

#[test]
fn review_divergence_stream_b() {
    let bytes = stream_b();
    let j1 = home::core::decode_trace(&bytes, 1);
    let j4 = home::core::decode_trace(&bytes, 4);
    eprintln!("B jobs=1: {:?}", j1.as_ref().map(|s| s.len()).map_err(|e| e.to_string()));
    eprintln!("B jobs=4: {:?}", j4.as_ref().map(|s| s.len()).map_err(|e| e.to_string()));
    assert_eq!(j1.is_ok(), j4.is_ok(), "verdict diverges between jobs=1 and jobs=4");
}
