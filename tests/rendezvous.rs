//! Synchronous-send (`mpi_ssend`) and `mpi_waitall` semantics through the
//! DSL, including the classic rendezvous deadlock and its detection.

use home::prelude::*;

#[test]
fn ssend_recv_pairs_complete() {
    let src = r#"
        program sr {
            mpi_init_thread(multiple);
            if (rank == 0) {
                mpi_ssend(to: 1, tag: 4, count: 8);
                mpi_recv(from: 1, tag: 5);
            }
            if (rank == 1) {
                mpi_recv(from: 0, tag: 4);
                mpi_ssend(to: 0, tag: 5, count: 8);
            }
            mpi_finalize();
        }
    "#;
    let report = check(&parse(src).unwrap(), &CheckOptions::default());
    assert!(report.violations.is_empty(), "{}", report.render());
    assert!(report.deadlocks.is_empty());
}

#[test]
fn head_to_head_ssend_deadlock_is_reported() {
    // Both ranks Ssend first: with rendezvous semantics neither can
    // progress — unlike eager `mpi_send`, which buffers.
    let src = r#"
        program hh {
            mpi_init_thread(multiple);
            int peer = 1 - rank;
            mpi_ssend(to: peer, tag: 0, count: 1);
            mpi_recv(from: peer, tag: 0);
            mpi_finalize();
        }
    "#;
    let report = check(&parse(src).unwrap(), &CheckOptions::default());
    assert!(!report.deadlocks.is_empty(), "rendezvous must deadlock");
    let (_, info) = &report.deadlocks[0];
    assert!(info.involves("MPI_Ssend"), "{info}");

    // The eager-send variant of the same program is fine.
    let eager = src.replace("mpi_ssend", "mpi_send");
    let report = check(&parse(&eager).unwrap(), &CheckOptions::default());
    assert!(report.deadlocks.is_empty(), "{}", report.render());
}

#[test]
fn concurrent_ssends_same_envelope_are_a_recv_side_violation_source() {
    // Two threads Ssend with one tag; receiver drains them sequentially —
    // the sends are concurrent MPI calls on srctmp/tagtmp (flagged under
    // SERIALIZED, racy-but-legal under MULTIPLE since sends need no
    // differentiation rule; we assert the *monitored races* exist).
    let src = r#"
        program ss {
            mpi_init_thread(multiple);
            if (rank == 0) {
                omp parallel num_threads(2) {
                    mpi_ssend(to: 1, tag: 3, count: 1);
                }
            }
            if (rank == 1) {
                mpi_recv(from: 0, tag: 3);
                mpi_recv(from: 0, tag: 3);
            }
            mpi_finalize();
        }
    "#;
    let report = check(&parse(src).unwrap(), &CheckOptions::default());
    assert!(report.deadlocks.is_empty(), "{:?}", report.deadlocks);
    assert!(
        report.races.iter().any(|r| r
            .first
            .mpi
            .as_ref()
            .is_some_and(|c| c.kind == home::trace::MpiCallKind::Ssend)),
        "monitored races on the concurrent Ssends must be visible"
    );
}

#[test]
fn waitall_completes_multiple_requests() {
    let src = r#"
        program wa {
            mpi_init_thread(multiple);
            if (rank == 0) {
                mpi_isend(to: 1, tag: 1, count: 1, req: s1);
                mpi_isend(to: 1, tag: 2, count: 1, req: s2);
                mpi_waitall(reqs: s1, s2);
            }
            if (rank == 1) {
                mpi_irecv(from: 0, tag: 1, req: r1);
                mpi_irecv(from: 0, tag: 2, req: r2);
                mpi_waitall(reqs: r1, r2);
            }
            mpi_finalize();
        }
    "#;
    let report = check(&parse(src).unwrap(), &CheckOptions::default());
    assert!(report.violations.is_empty(), "{}", report.render());
    assert!(report.incidents.is_empty(), "{:?}", report.incidents);
}

#[test]
fn concurrent_waitall_on_shared_request_violates() {
    let src = r#"
        program wr {
            mpi_init_thread(multiple);
            if (rank == 0) { mpi_send(to: 1, tag: 0, count: 1); }
            if (rank == 1) {
                mpi_irecv(from: 0, tag: 0, req: shared);
                omp parallel num_threads(2) {
                    mpi_waitall(reqs: shared);
                }
            }
            mpi_finalize();
        }
    "#;
    let report = check(&parse(src).unwrap(), &CheckOptions::default());
    assert!(
        report.has(ViolationKind::ConcurrentRequest),
        "{}",
        report.render()
    );
}

#[test]
fn ssend_and_waitall_roundtrip_through_printer() {
    let src = r#"
        program rt {
            mpi_init_thread(multiple);
            mpi_ssend(to: 1, tag: 1 + tid, count: 4, comm: c);
            mpi_isend(to: 1, tag: 2, count: 1, req: a);
            mpi_irecv(from: any, tag: any, req: b);
            mpi_waitall(reqs: a, b);
            mpi_finalize();
        }
    "#;
    let p1 = parse(src).unwrap();
    let printed = print_program(&p1);
    let p2 = parse(&printed).unwrap();
    assert_eq!(p1.stmt_count(), p2.stmt_count());
    assert_eq!(printed, print_program(&p2));
}

#[test]
fn omp_atomic_updates_are_race_free_and_roundtrip() {
    let src = r#"
        program atomic {
            mpi_init_thread(multiple);
            shared int acc = 0;
            omp parallel num_threads(4) {
                omp for i in 0..16 {
                    omp atomic acc = acc + i;
                }
            }
            mpi_finalize();
        }
    "#;
    let p1 = parse(src).unwrap();
    let report = check(&p1, &CheckOptions::default());
    assert!(report.violations.is_empty(), "{}", report.render());
    assert!(report.deadlocks.is_empty());
    // Round-trips through the canonical printer.
    let printed = print_program(&p1);
    assert!(printed.contains("omp atomic acc ="), "{printed}");
    let p2 = parse(&printed).unwrap();
    assert_eq!(p1.stmt_count(), p2.stmt_count());
}
