//! Reproducible schedule tokens.
//!
//! A token is everything needed to replay one explored schedule through
//! `home check`: the scheduler seed, the PCT depth (when the schedule was
//! a priority schedule), and any directed-rescheduling priority pins.

use home_sched::SchedPolicy;
use std::fmt;

/// Priority a directed flip pins the *later* racing access's thread to:
/// above every unpinned draw ([`home_sched::PRIORITY_BASE_MAX`]), so it
/// runs first.
pub const DIRECTED_HIGH: i64 = 1 << 40;

/// Priority a directed flip pins the *earlier* racing access's thread to:
/// below zero and below every change-point demotion, so it runs last.
pub const DIRECTED_LOW: i64 = -(1 << 40);

/// One explored schedule, as a reproducible token.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct ScheduleToken {
    /// Scheduler seed.
    pub seed: u64,
    /// `Some(d)` = PCT priority schedule with `d` change points; `None` =
    /// plain seeded-random schedule.
    pub depth: Option<u8>,
    /// Thread-name priority pins (directed flips). Non-empty pins imply
    /// the priority policy even when `depth` is `None`.
    pub pins: Vec<(String, i64)>,
}

impl ScheduleToken {
    /// A seeded uniform-random schedule.
    pub fn random(seed: u64) -> ScheduleToken {
        ScheduleToken {
            seed,
            depth: None,
            pins: Vec::new(),
        }
    }

    /// A PCT priority schedule with `depth` change points.
    pub fn pct(seed: u64, depth: u8) -> ScheduleToken {
        ScheduleToken {
            seed,
            depth: Some(depth),
            pins: Vec::new(),
        }
    }

    /// A directed reschedule: fixed priorities (depth 0) with two racing
    /// threads pinned to flip their observed access order.
    pub fn directed(seed: u64, pins: Vec<(String, i64)>) -> ScheduleToken {
        ScheduleToken {
            seed,
            depth: Some(0),
            pins,
        }
    }

    /// The scheduling policy this token replays under.
    pub fn policy(&self) -> SchedPolicy {
        match self.depth {
            Some(d) => SchedPolicy::Priority { depth: d },
            None if !self.pins.is_empty() => SchedPolicy::Priority { depth: 0 },
            None => SchedPolicy::Random,
        }
    }

    /// The `home check` flags that replay this schedule, e.g.
    /// `--seeds 5 --pct-depth 3`.
    pub fn repro_flags(&self) -> String {
        let mut s = format!("--seeds {}", self.seed);
        if let Some(d) = self.depth {
            s.push_str(&format!(" --pct-depth {d}"));
        }
        if !self.pins.is_empty() {
            s.push_str(" --pins ");
            for (i, (name, prio)) in self.pins.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&format!("{name}:{prio}"));
            }
        }
        s
    }
}

impl fmt::Display for ScheduleToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seed={}", self.seed)?;
        if let Some(d) = self.depth {
            write!(f, " depth={d}")?;
        }
        for (name, prio) in &self.pins {
            write!(f, " pin={name}:{prio}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policies_follow_token_shape() {
        assert_eq!(ScheduleToken::random(3).policy(), SchedPolicy::Random);
        assert_eq!(
            ScheduleToken::pct(3, 4).policy(),
            SchedPolicy::Priority { depth: 4 }
        );
        assert_eq!(
            ScheduleToken::directed(3, vec![("rank1".into(), DIRECTED_HIGH)]).policy(),
            SchedPolicy::Priority { depth: 0 }
        );
    }

    #[test]
    fn repro_flags_round_trip_the_fields() {
        assert_eq!(ScheduleToken::random(7).repro_flags(), "--seeds 7");
        assert_eq!(
            ScheduleToken::pct(7, 3).repro_flags(),
            "--seeds 7 --pct-depth 3"
        );
        let t = ScheduleToken::directed(
            9,
            vec![
                ("rank1.r0.t1".into(), DIRECTED_HIGH),
                ("rank1".into(), DIRECTED_LOW),
            ],
        );
        assert_eq!(
            t.repro_flags(),
            format!(
                "--seeds 9 --pct-depth 0 --pins rank1.r0.t1:{DIRECTED_HIGH},rank1:{DIRECTED_LOW}"
            )
        );
        assert_eq!(
            t.to_string(),
            format!("seed=9 depth=0 pin=rank1.r0.t1:{DIRECTED_HIGH} pin=rank1:{DIRECTED_LOW}")
        );
    }
}
