//! Micro-benchmarks of the analysis engines themselves: vector-clock
//! algebra, lockset operations, the race detector, the static analysis,
//! and the DSL parser.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use home_dynamic::{detect, DetectorConfig};
use home_npb::{generate, Benchmark, Class};
use home_static::analyze;
use home_trace::{
    AccessKind, Event, EventKind, LockId, LockSet, MemLoc, Rank, RegionId, Tid, Trace, VarId,
    VectorClock,
};
use std::time::Duration;

fn bench_vector_clocks(c: &mut Criterion) {
    let mut group = c.benchmark_group("vector_clock");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    for width in [4usize, 64] {
        group.bench_with_input(BenchmarkId::new("join", width), &width, |b, &w| {
            let mut a = VectorClock::new();
            let mut x = VectorClock::new();
            for i in 0..w {
                a.set(i, i as u64);
                x.set(i, (w - i) as u64);
            }
            b.iter(|| {
                let mut j = a.clone();
                j.join(&x);
                j
            })
        });
        group.bench_with_input(BenchmarkId::new("concurrent", width), &width, |b, &w| {
            let mut a = VectorClock::new();
            let mut x = VectorClock::new();
            a.set(0, 5);
            x.set(w.saturating_sub(1), 5);
            b.iter(|| a.concurrent_with(&x))
        });
    }
    group.finish();
}

fn bench_locksets(c: &mut Criterion) {
    c.bench_function("lockset_intersect_8", |b| {
        let a = LockSet::from_iter((0..8).map(LockId));
        let x = LockSet::from_iter((4..12).map(LockId));
        b.iter(|| a.intersect(&x))
    });
}

/// A synthetic trace: `nthreads` threads × `per_thread` accesses over
/// `nvars` variables inside one region, barriers every 16 accesses.
fn synthetic_trace(nthreads: u32, per_thread: u64, nvars: u32) -> Trace {
    let mut events = Vec::new();
    let mut seq = 0u64;
    events.push(Event {
        seq,
        rank: Rank(0),
        tid: Tid(0),
        region: None,
        time_ns: 0,
        loc: None,
        kind: EventKind::Fork {
            region: RegionId(0),
            nthreads,
        },
    });
    seq += 1;
    for i in 0..per_thread {
        for t in 0..nthreads {
            events.push(Event {
                seq,
                rank: Rank(0),
                tid: Tid(t),
                region: Some(RegionId(0)),
                time_ns: seq,
                loc: None,
                kind: EventKind::Access {
                    loc: MemLoc::Elem(VarId(i as u32 % nvars), (i * 7 + t as u64) % 64),
                    kind: if i % 3 == 0 {
                        AccessKind::Write
                    } else {
                        AccessKind::Read
                    },
                },
            });
            seq += 1;
        }
        if i % 16 == 15 {
            for t in 0..nthreads {
                events.push(Event {
                    seq,
                    rank: Rank(0),
                    tid: Tid(t),
                    region: Some(RegionId(0)),
                    time_ns: seq,
                    loc: None,
                    kind: EventKind::Barrier {
                        barrier: home_trace::BarrierId(0),
                        epoch: i / 16,
                    },
                });
                seq += 1;
            }
        }
    }
    events.push(Event {
        seq,
        rank: Rank(0),
        tid: Tid(0),
        region: None,
        time_ns: seq,
        loc: None,
        kind: EventKind::JoinRegion {
            region: RegionId(0),
        },
    });
    Trace::from_events(events)
}

fn bench_detector(c: &mut Criterion) {
    let mut group = c.benchmark_group("race_detector");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    group.sample_size(20);
    for (label, trace) in [
        ("2t_x_1k", synthetic_trace(2, 1_000, 16)),
        ("4t_x_2k", synthetic_trace(4, 2_000, 64)),
    ] {
        group.bench_with_input(BenchmarkId::new("hybrid", label), &trace, |b, t| {
            b.iter(|| detect(t, &DetectorConfig::hybrid()).expect("well-formed synthetic trace"))
        });
    }
    group.finish();
}

fn bench_static_analysis(c: &mut Criterion) {
    let program = generate(Benchmark::BtMz, Class::C);
    c.bench_function("static_analyze_bt_mz", |b| b.iter(|| analyze(&program)));
}

fn bench_parser(c: &mut Criterion) {
    let program = generate(Benchmark::LuMz, Class::C);
    let source = home_ir::print_program(&program);
    c.bench_function("parse_lu_mz_source", |b| {
        b.iter(|| home_ir::parse(&source).unwrap())
    });
}

criterion_group!(
    benches,
    bench_vector_clocks,
    bench_locksets,
    bench_detector,
    bench_static_analysis,
    bench_parser
);
criterion_main!(benches);
