//! Session-driven offline analysis of decoded HBT sections.
//!
//! One [`Session`](home_core::Session) per recorded section, fed
//! event-at-a-time, exactly like the daemon's ingest loop — so `home
//! replay`, `home analyze`, and `home serve` share one verdict path and
//! are byte-identical by construction. Violations are deduplicated across
//! sections by identity `(kind, rank, locations)`, first occurrence wins,
//! with each kept violation carrying the minimum [`EmitOrder`] it was
//! emitted under (the canonical batch-evaluation position).

use home_core::{EmitOrder, Session, Violation, ViolationCollector};
use home_dynamic::DetectorConfig;
use home_interp::MpiIncident;
use home_stream::{HbtReader, HbtRecord, HbtSection, ManifestCheck, TraceIncident};
use home_trace::HomeError;
use std::collections::BTreeMap;
use std::sync::Arc;

// The identity keying lives in `home_core` (it is also the batch pipeline's
// and the exploration engine's dedup key); re-exported here because serve's
// public API grew it first.
pub use home_core::{violation_identity, ViolationIdentity};

/// One violation with its canonical emission key.
#[derive(Debug, Clone, PartialEq)]
pub struct KeyedViolation {
    /// The minimum canonical batch-order position this violation was
    /// emitted under within its section.
    pub order: EmitOrder,
    /// The classified violation.
    pub violation: Violation,
}

/// The verdict over one recorded section (one run).
#[derive(Debug, Clone, Default)]
pub struct SectionVerdict {
    /// Scheduler seed, when the section was opened by a `RUN` record.
    pub seed: Option<u64>,
    /// Events the section contained.
    pub events: u64,
    /// Monitored races the detector found.
    pub races: usize,
    /// Races the rules could not classify.
    pub unclassified: usize,
    /// Canonical per-section violation list (batch order), keyed.
    pub violations: Vec<KeyedViolation>,
}

/// The combined verdict over all sections of one trace.
#[derive(Debug, Clone, Default)]
pub struct TraceOutcome {
    /// Per-section verdicts, in stream order.
    pub sections: Vec<SectionVerdict>,
    /// Total events across sections.
    pub events: u64,
    /// Total monitored races across sections.
    pub races: usize,
    /// Total unclassified races across sections.
    pub unclassified: usize,
    /// Violations deduplicated across sections: first occurrence wins,
    /// section order then canonical order within a section.
    pub violations: Vec<Violation>,
}

fn to_incident(i: &TraceIncident) -> MpiIncident {
    MpiIncident {
        rank: i.rank,
        line: i.line,
        call: i.call.clone(),
        error: i.error.clone(),
    }
}

/// One section's detection in flight: a streaming [`Session`] plus the
/// emission collector that recovers each violation's canonical position.
///
/// Events are fed the moment they arrive (bounded memory — nothing is
/// buffered but the detector's own live state); incidents are buffered and
/// fed at [`SectionSession::finish`], so a stream that interleaves
/// incidents with events reaches the exact verdict the offline path
/// computes from the decoded section.
#[derive(Debug)]
pub struct SectionSession {
    seed: Option<u64>,
    session: Session,
    collector: Arc<ViolationCollector>,
    incidents: Vec<MpiIncident>,
}

impl SectionSession {
    /// Open a session for a section recorded under `seed` (or the implicit
    /// anonymous section).
    pub fn open(seed: Option<u64>) -> SectionSession {
        let collector = Arc::new(ViolationCollector::new());
        let session = Session::streaming(
            seed.unwrap_or(0),
            DetectorConfig::hybrid(),
            Arc::clone(&collector) as Arc<dyn home_core::ViolationSink>,
        );
        SectionSession {
            seed,
            session,
            collector,
            incidents: Vec::new(),
        }
    }

    /// Feed one event into the live detector + rule engine.
    pub fn feed_event(&self, e: &home_trace::Event) {
        self.session.feed_event(e);
    }

    /// Feed a batch of events through the amortized lock-once path
    /// ([`Session::feed_batch`]). Byte-identical to feeding each event
    /// individually, for every batch size.
    pub fn feed_batch(&self, events: &[home_trace::Event]) {
        self.session.feed_batch(events);
    }

    /// Buffer one incident for end-of-section classification.
    pub fn push_incident(&mut self, i: &TraceIncident) {
        self.incidents.push(to_incident(i));
    }

    /// Finish: feed the buffered incidents, run the end-of-run evaluation,
    /// and key each canonical violation by its minimum emission position.
    pub fn finish(self) -> Result<SectionVerdict, HomeError> {
        for i in &self.incidents {
            self.session.feed_incident(i);
        }
        let outcome = self.session.finish()?;

        // Minimum canonical emission position per violation identity.
        let mut first: BTreeMap<ViolationIdentity, EmitOrder> = BTreeMap::new();
        for e in self.collector.emissions() {
            let key = violation_identity(&e.violation);
            match first.get_mut(&key) {
                Some(order) => {
                    if e.order < *order {
                        *order = e.order;
                    }
                }
                None => {
                    first.insert(key, e.order);
                }
            }
        }
        let violations = outcome
            .violations
            .into_iter()
            .map(|violation| {
                let order = first
                    .get(&violation_identity(&violation))
                    .copied()
                    .unwrap_or(EmitOrder::new(u8::MAX, u8::MAX, u64::MAX, u64::MAX));
                KeyedViolation { order, violation }
            })
            .collect();
        Ok(SectionVerdict {
            seed: self.seed,
            events: outcome.events,
            races: outcome.races.len(),
            unclassified: outcome.unclassified.len(),
            violations,
        })
    }
}

/// Analyze one decoded section with a streaming [`Session`]: feed every
/// event in order, then the section's incidents, then finish. This is the
/// single verdict path shared by `replay`, `analyze`, and the serve daemon
/// (which drives [`SectionSession`] record-at-a-time instead).
pub fn analyze_section(section: &HbtSection) -> Result<SectionVerdict, HomeError> {
    analyze_section_batched(section, None)
}

/// [`analyze_section`] with an explicit feed granularity: events go
/// through [`SectionSession::feed_batch`] in chunks of `batch` events
/// (the whole section at once for `None`). Every granularity produces
/// byte-identical verdicts; the parity suite pins it.
pub fn analyze_section_batched(
    section: &HbtSection,
    batch: Option<usize>,
) -> Result<SectionVerdict, HomeError> {
    let mut session = SectionSession::open(section.seed);
    let events = section.trace.events();
    match batch {
        Some(n) if n > 0 => {
            for chunk in events.chunks(n) {
                session.feed_batch(chunk);
            }
        }
        _ => session.feed_batch(events),
    }
    for i in &section.incidents {
        session.push_incident(i);
    }
    session.finish()
}

/// Combine per-section verdicts into one trace outcome, deduplicating
/// violations across sections (first occurrence wins; within a section the
/// canonical order is already sorted by emission key).
pub fn combine_verdicts(verdicts: Vec<SectionVerdict>) -> TraceOutcome {
    let mut out = TraceOutcome::default();
    let mut seen: BTreeMap<ViolationIdentity, ()> = BTreeMap::new();
    for verdict in verdicts {
        out.events += verdict.events;
        out.races += verdict.races;
        out.unclassified += verdict.unclassified;
        for kv in &verdict.violations {
            if seen.insert(violation_identity(&kv.violation), ()).is_none() {
                out.violations.push(kv.violation.clone());
            }
        }
        out.sections.push(verdict);
    }
    out
}

/// Analyze every section of a decoded trace and combine the verdicts.
pub fn analyze_sections(sections: &[HbtSection]) -> Result<TraceOutcome, HomeError> {
    analyze_sections_batched(sections, None)
}

/// [`analyze_sections`] with an explicit feed granularity (see
/// [`analyze_section_batched`]); `None` feeds each section as one batch.
pub fn analyze_sections_batched(
    sections: &[HbtSection],
    batch: Option<usize>,
) -> Result<TraceOutcome, HomeError> {
    let mut verdicts = Vec::with_capacity(sections.len());
    for section in sections {
        verdicts.push(analyze_section_batched(section, batch)?);
    }
    Ok(combine_verdicts(verdicts))
}

/// Analyze an HBT stream record-at-a-time without materializing it: one
/// [`SectionSession`] per recorded section, manifest-validated, bounded
/// memory (nothing is buffered but the detector's own live state).
///
/// This is the daemon's ingest loop, shared with `replay`/`analyze` on
/// piped stdin — a multi-gigabyte trace streams through the chunked
/// [`HbtReader`] instead of being read whole into memory, and the verdict
/// is byte-identical to the decoded-sections path by construction.
pub fn analyze_stream(input: impl std::io::Read) -> Result<TraceOutcome, HomeError> {
    let mut reader = HbtReader::new(input)?;
    let mut check = ManifestCheck::new();
    let mut current: Option<SectionSession> = None;
    let mut verdicts = Vec::new();
    while let Some(record) = reader.next_record()? {
        check.on_record(&record, reader.offset())?;
        match record {
            HbtRecord::Run { seed } => {
                if let Some(session) = current.take() {
                    verdicts.push(session.finish()?);
                }
                current = Some(SectionSession::open(Some(seed)));
            }
            HbtRecord::Event(e) => {
                current
                    .get_or_insert_with(|| SectionSession::open(None))
                    .feed_event(&e);
            }
            HbtRecord::Incident(i) => {
                current
                    .get_or_insert_with(|| SectionSession::open(None))
                    .push_incident(&i);
            }
            HbtRecord::Manifest { .. } | HbtRecord::Index { .. } => {}
        }
    }
    check.finish(reader.offset())?;
    if let Some(session) = current.take() {
        verdicts.push(session.finish()?);
    }
    Ok(combine_verdicts(verdicts))
}
