//! Benchmark identities and class scaling.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The three NPB-MZ benchmarks the paper evaluates (hybrid MPI/OpenMP
/// multi-zone versions of LU, BT, and SP).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Benchmark {
    /// LU-MZ: SSOR-style lower/upper sweeps.
    LuMz,
    /// BT-MZ: block-tridiagonal ADI solves (heaviest compute).
    BtMz,
    /// SP-MZ: scalar-pentadiagonal ADI solves.
    SpMz,
}

impl Benchmark {
    /// All three, in the paper's order.
    pub const ALL: [Benchmark; 3] = [Benchmark::LuMz, Benchmark::BtMz, Benchmark::SpMz];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::LuMz => "LU-MZ",
            Benchmark::BtMz => "BT-MZ",
            Benchmark::SpMz => "SP-MZ",
        }
    }

    /// Directional solve phases per time step (LU: two sweeps;
    /// BT/SP: x-, y-, z-solve).
    pub fn phases(self) -> usize {
        match self {
            Benchmark::LuMz => 2,
            Benchmark::BtMz | Benchmark::SpMz => 3,
        }
    }

    /// Relative compute weight per row (BT's block solves are the
    /// heaviest; SP is lighter; LU in between).
    pub fn compute_weight(self) -> u64 {
        match self {
            Benchmark::LuMz => 3,
            Benchmark::BtMz => 5,
            Benchmark::SpMz => 2,
        }
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// NPB problem classes, scaled down so the whole evaluation runs on a
/// laptop while preserving the compute/communication ratios.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Class {
    S,
    W,
    A,
    B,
    C,
}

impl Class {
    /// All classes, smallest first.
    pub const ALL: [Class; 5] = [Class::S, Class::W, Class::A, Class::B, Class::C];

    /// Display letter.
    pub fn letter(self) -> &'static str {
        match self {
            Class::S => "S",
            Class::W => "W",
            Class::A => "A",
            Class::B => "B",
            Class::C => "C",
        }
    }
}

impl fmt::Display for Class {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.letter())
    }
}

/// Concrete size parameters of one (benchmark, class) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SizeParams {
    /// Time steps.
    pub steps: u64,
    /// Total rows across all ranks (each rank's worksharing loop handles
    /// `ceil(rows / size)` — strong scaling, like the paper's fixed-class
    /// runs over growing process counts).
    pub rows: u64,
    /// Virtual flops per row per phase (before the benchmark's weight).
    pub flops_per_row: u64,
    /// Words per halo-exchange message.
    pub msg_words: u64,
    /// Residual allreduce every this many steps.
    pub allreduce_every: u64,
}

impl SizeParams {
    /// Parameters for a (benchmark, class) pair.
    pub fn of(benchmark: Benchmark, class: Class) -> SizeParams {
        let (steps, rows, flops_per_row, msg_words) = match class {
            Class::S => (2, 16, 2_000, 256),
            Class::W => (3, 32, 10_000, 1_024),
            Class::A => (4, 64, 40_000, 4_096),
            Class::B => (6, 128, 160_000, 16_384),
            Class::C => (8, 256, 640_000, 65_536),
        };
        SizeParams {
            steps,
            rows,
            flops_per_row: flops_per_row * benchmark.compute_weight(),
            msg_words,
            allreduce_every: 2,
        }
    }

    /// Total virtual flops per rank (rough, for sanity checks).
    pub fn total_flops(&self, phases: usize) -> u64 {
        self.steps * phases as u64 * self.rows * self.flops_per_row
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_scaling_is_monotone() {
        for b in Benchmark::ALL {
            let mut last = 0;
            for c in Class::ALL {
                let p = SizeParams::of(b, c);
                let total = p.total_flops(b.phases());
                assert!(total > last, "{b} {c} must grow");
                last = total;
            }
        }
    }

    #[test]
    fn bt_is_heavier_than_sp() {
        let bt = SizeParams::of(Benchmark::BtMz, Class::A);
        let sp = SizeParams::of(Benchmark::SpMz, Class::A);
        assert!(
            bt.total_flops(Benchmark::BtMz.phases()) > sp.total_flops(Benchmark::SpMz.phases())
        );
    }

    #[test]
    fn names_and_phases() {
        assert_eq!(Benchmark::LuMz.name(), "LU-MZ");
        assert_eq!(Benchmark::LuMz.phases(), 2);
        assert_eq!(Benchmark::BtMz.phases(), 3);
        assert_eq!(Class::C.letter(), "C");
    }
}
