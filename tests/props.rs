//! Property-based tests (proptest) over the core data structures and the
//! language front-end.

use home::ir::build as b;
use home::ir::{parse, print_program, BinOp, Expr, IrReduceOp, MpiStmt, Stmt};
use home::trace::{LockId, LockSet, VectorClock};
use proptest::prelude::*;

// ---- vector clock laws -----------------------------------------------------

fn arb_vc() -> impl Strategy<Value = VectorClock> {
    proptest::collection::vec(0u64..20, 0..6).prop_map(|vals| {
        let mut vc = VectorClock::new();
        for (i, v) in vals.into_iter().enumerate() {
            vc.set(i, v);
        }
        vc
    })
}

proptest! {
    #[test]
    fn vc_join_is_commutative(a in arb_vc(), c in arb_vc()) {
        let mut ac = a.clone();
        ac.join(&c);
        let mut ca = c.clone();
        ca.join(&a);
        prop_assert_eq!(ac.partial_cmp_vc(&ca), Some(std::cmp::Ordering::Equal));
    }

    #[test]
    fn vc_join_is_upper_bound(a in arb_vc(), c in arb_vc()) {
        let mut j = a.clone();
        j.join(&c);
        prop_assert!(a.leq(&j));
        prop_assert!(c.leq(&j));
    }

    #[test]
    fn vc_join_is_idempotent(a in arb_vc()) {
        let mut j = a.clone();
        j.join(&a);
        prop_assert!(j.leq(&a) && a.leq(&j));
    }

    #[test]
    fn vc_leq_is_a_partial_order(a in arb_vc(), c in arb_vc(), d in arb_vc()) {
        // Reflexive.
        prop_assert!(a.leq(&a));
        // Antisymmetric (up to equality of components).
        if a.leq(&c) && c.leq(&a) {
            prop_assert_eq!(a.partial_cmp_vc(&c), Some(std::cmp::Ordering::Equal));
        }
        // Transitive.
        if a.leq(&c) && c.leq(&d) {
            prop_assert!(a.leq(&d));
        }
    }

    #[test]
    fn vc_tick_strictly_increases(a in arb_vc(), slot in 0usize..8) {
        let before = a.clone();
        let mut after = a;
        after.tick(slot);
        prop_assert!(before.happens_before(&after));
    }

    #[test]
    fn vc_concurrent_is_symmetric_and_irreflexive(a in arb_vc(), c in arb_vc()) {
        prop_assert_eq!(a.concurrent_with(&c), c.concurrent_with(&a));
        prop_assert!(!a.concurrent_with(&a));
    }
}

// ---- lockset laws ----------------------------------------------------------

fn arb_lockset() -> impl Strategy<Value = LockSet> {
    proptest::collection::btree_set(0u32..12, 0..6)
        .prop_map(|s| LockSet::from_iter(s.into_iter().map(LockId)))
}

proptest! {
    #[test]
    fn lockset_intersect_commutes(a in arb_lockset(), c in arb_lockset()) {
        prop_assert_eq!(a.intersect(&c), c.intersect(&a));
    }

    #[test]
    fn lockset_intersection_is_subset(a in arb_lockset(), c in arb_lockset()) {
        let i = a.intersect(&c);
        for l in i.iter() {
            prop_assert!(a.contains(l) && c.contains(l));
        }
        prop_assert_eq!(i.is_empty(), a.disjoint(&c));
    }

    #[test]
    fn lockset_insert_remove_roundtrip(a in arb_lockset(), l in 0u32..12) {
        let lock = LockId(l);
        let had = a.contains(lock);
        let mut m = a.clone();
        m.insert(lock);
        prop_assert!(m.contains(lock));
        m.remove(lock);
        prop_assert!(!m.contains(lock));
        if !had {
            prop_assert_eq!(m, a);
        }
    }
}

// ---- DSL parse ∘ print round-trip -------------------------------------------

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0i64..100).prop_map(Expr::Int),
        Just(Expr::Rank),
        Just(Expr::Size),
        Just(Expr::ThreadId),
        Just(Expr::NumThreads),
        Just(Expr::Any),
        "[a-z][a-z0-9_]{0,5}".prop_map(Expr::Var),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, c)| Expr::bin(BinOp::Add, a, c)),
            (inner.clone(), inner.clone()).prop_map(|(a, c)| Expr::bin(BinOp::Mul, a, c)),
            (inner.clone(), inner.clone()).prop_map(|(a, c)| Expr::bin(BinOp::Eq, a, c)),
            (inner.clone(), inner.clone()).prop_map(|(a, c)| Expr::bin(BinOp::Lt, a, c)),
            inner.clone().prop_map(|a| Expr::Neg(Box::new(a))),
            inner.prop_map(|a| Expr::Not(Box::new(a))),
        ]
    })
}

fn arb_stmt() -> impl Strategy<Value = Stmt> {
    let leaf = prop_oneof![
        ( "[a-z][a-z0-9_]{0,5}", arb_expr()).prop_map(|(n, e)| b::decl(&n, e)),
        ( "[a-z][a-z0-9_]{0,5}", arb_expr()).prop_map(|(n, e)| b::shared_decl(&n, e)),
        arb_expr().prop_map(b::compute),
        (arb_expr(), arb_expr(), arb_expr()).prop_map(|(d, t, c)| b::send(d, t, c)),
        (arb_expr(), arb_expr()).prop_map(|(s, t)| b::recv(s, t)),
        Just(b::mpi(MpiStmt::Barrier { comm: None })),
        arb_expr().prop_map(|c| b::mpi(MpiStmt::Allreduce { op: IrReduceOp::Max, count: c, comm: None })),
        (arb_expr(), arb_expr()).prop_map(|(s, t)| b::mpi(MpiStmt::Probe { src: s, tag: t, comm: None })),
        Just(b::omp_barrier()),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        let block = proptest::collection::vec(inner.clone(), 1..4);
        prop_oneof![
            (arb_expr(), block.clone()).prop_map(|(c, blk)| b::if_then(c, blk)),
            (arb_expr(), block.clone(), proptest::collection::vec(inner.clone(), 1..3))
                .prop_map(|(c, t, e)| b::if_else(c, t, e)),
            ("[a-z][a-z0-9_]{0,3}", arb_expr(), arb_expr(), block.clone())
                .prop_map(|(v, lo, hi, blk)| b::seq_for(&v, lo, hi, blk)),
            (arb_expr(), block.clone()).prop_map(|(n, blk)| b::omp_parallel(n, blk)),
            ("[a-z][a-z0-9_]{0,3}", arb_expr(), arb_expr(), block.clone())
                .prop_map(|(v, lo, hi, blk)| b::omp_for(&v, lo, hi, blk)),
            block.clone().prop_map(b::omp_single),
            block.clone().prop_map(b::omp_master),
            ("[a-z][a-z0-9_]{0,3}", block.clone()).prop_map(|(n, blk)| b::omp_critical(&n, blk)),
            proptest::collection::vec(block, 1..3).prop_map(b::omp_sections),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// print ∘ parse ∘ print is the identity on printed form (canonical
    /// printer is a fixpoint), and parse succeeds on everything the
    /// builder can produce.
    #[test]
    fn printed_programs_reparse_and_print_identically(
        body in proptest::collection::vec(arb_stmt(), 1..6)
    ) {
        let program = home::ir::build::finalize("prop", body);
        let printed = print_program(&program);
        let reparsed = parse(&printed).expect("printed program must parse");
        prop_assert_eq!(reparsed.stmt_count(), program.stmt_count());
        let printed2 = print_program(&reparsed);
        prop_assert_eq!(printed, printed2);
    }
}

// ---- static analysis invariants ---------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Algorithm 1's marking is exactly "syntactically inside an
    /// omp parallel region": instrumented ⇒ in-region, and outside-region
    /// reachable calls are never instrumented.
    #[test]
    fn checklist_instruments_only_hybrid_sites(
        body in proptest::collection::vec(arb_stmt(), 1..6)
    ) {
        let program = home::ir::build::finalize("prop", body);
        let report = home::static_analysis::analyze(&program);
        for site in &report.checklist.sites {
            if site.instrument {
                prop_assert!(site.in_hybrid_region && site.reachable);
            }
            if !site.in_hybrid_region {
                prop_assert!(!site.instrument);
            }
        }
        prop_assert_eq!(
            report.stats.instrumented + report.stats.skipped,
            report.stats.total_mpi_calls
        );
    }
}
