//! Scoped-thread fan-out over an indexed work list.
//!
//! The seed pipeline and the v2 trace decoder share one parallelism
//! pattern: indexed slots keep the merged output in input order
//! regardless of which worker finishes first, so results are
//! byte-identical for every `--jobs` value. Even `jobs == 1` goes
//! through a spawned scoped thread: that keeps side channels (the panic
//! hook's thread name on stderr) identical between the serial and
//! parallel paths.

/// Run `work` over every item of `items`, `jobs` ways in parallel,
/// returning one slot per item in input order. `work` receives
/// `(index, &item)`. A slot is only `None` if a worker died without
/// writing it — callers supply a fallback instead of panicking.
pub fn fan_out_indexed<T: Sync, R: Send>(
    items: &[T],
    jobs: usize,
    work: impl Fn(usize, &T) -> R + Sync,
) -> Vec<Option<R>> {
    fan_out_indexed_with(items, jobs, || (), |(), i, item| work(i, item))
}

/// [`fan_out_indexed`] with per-worker scratch state: each spawned worker
/// calls `init` once and threads the resulting state through every item
/// of its chunk. The v2 frame decoder uses this to reuse one
/// decompression buffer and one event batch per worker instead of
/// allocating per frame.
pub fn fan_out_indexed_with<T: Sync, S, R: Send>(
    items: &[T],
    jobs: usize,
    init: impl Fn() -> S + Sync,
    work: impl Fn(&mut S, usize, &T) -> R + Sync,
) -> Vec<Option<R>> {
    let jobs = jobs.max(1).min(items.len().max(1));
    let mut slots: Vec<Option<R>> = Vec::new();
    slots.resize_with(items.len(), || None);
    let chunk = items.len().div_ceil(jobs).max(1);
    let (init, work) = (&init, &work);
    std::thread::scope(|scope| {
        for (chunk_i, (slot_chunk, item_chunk)) in
            slots.chunks_mut(chunk).zip(items.chunks(chunk)).enumerate()
        {
            let base = chunk_i * chunk;
            scope.spawn(move || {
                let mut state = init();
                for (off, (slot, item)) in slot_chunk.iter_mut().zip(item_chunk).enumerate() {
                    *slot = Some(work(&mut state, base + off, item));
                }
            });
        }
    });
    slots
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_stay_in_input_order() {
        let items: Vec<usize> = (0..37).collect();
        for jobs in [1, 2, 4, 16, 100] {
            let slots = fan_out_indexed(&items, jobs, |i, &x| {
                assert_eq!(i, x);
                x * 2
            });
            let got: Vec<usize> = slots.into_iter().map(|s| s.unwrap()).collect();
            assert_eq!(got, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_input_yields_no_slots() {
        let slots = fan_out_indexed(&[] as &[u64], 4, |_, &x| x);
        assert!(slots.is_empty());
    }
}
