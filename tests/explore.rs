//! End-to-end exploration guarantees:
//!
//! * determinism — the same `(program, strategy, seed, budget)` produces a
//!   byte-identical report (violations, tokens, coverage stats) for every
//!   `--jobs` value;
//! * fingerprint soundness — the DPOR-lite fingerprint is stable across
//!   independent replays of the same schedule and actually deduplicates
//!   HB-equivalent schedules instead of re-analyzing them;
//! * reproduction — every token the explorer prints replays through the
//!   `check` pipeline to the same violation, deterministically.

use home::explore::{explore, schedule_fingerprint};
use home::prelude::*;
use std::sync::Arc;

fn load(path: &str) -> Program {
    let source = std::fs::read_to_string(path).expect("test program exists");
    parse(&source).expect("test program parses")
}

/// Everything the report exposes, in one comparable string: the rendered
/// text (coverage lines, tokens, reproduction commands) plus the raw
/// violation list.
fn report_key(report: &ExploreReport) -> String {
    format!(
        "{}\n{:?}\n{:?}",
        report.render("p.hmp"),
        report.violations,
        report.partial
    )
}

#[test]
fn explore_report_is_byte_identical_across_jobs() {
    let program = load("programs/figure2.hmp");
    for strategy in [
        Strategy::Pct,
        Strategy::Random,
        Strategy::Directed,
        Strategy::All,
    ] {
        let base = ExploreOptions {
            budget: 24,
            strategy,
            jobs: 1,
            ..ExploreOptions::default()
        };
        let serial = explore(&program, &base);
        for jobs in [2usize, 4] {
            let options = ExploreOptions {
                jobs,
                ..base.clone()
            };
            let parallel = explore(&program, &options);
            assert_eq!(
                report_key(&serial),
                report_key(&parallel),
                "strategy {strategy}: report diverges between jobs=1 and jobs={jobs}"
            );
        }
    }
}

#[test]
fn fingerprint_is_stable_across_independent_replays() {
    let program = load("programs/figure2.hmp");
    let checklist = Arc::new(analyze(&program).checklist.clone());
    for seed in 1u64..6 {
        let fingerprint = || {
            let mut cfg = RunConfig::test(2, seed).with_checklist(Arc::clone(&checklist));
            cfg.threads_per_proc = 2;
            schedule_fingerprint(&run(&program, &cfg))
        };
        assert_eq!(
            fingerprint(),
            fingerprint(),
            "seed {seed}: unstable fingerprint"
        );
    }
}

#[test]
fn fingerprint_dedupes_equivalent_schedules() {
    // One thread per rank: every schedule has identical per-rank
    // projections, so of N attempted schedules exactly one is analyzed and
    // the rest are deduplicated — never re-detected, never re-counted.
    let program = parse(
        r#"
        program serial {
            mpi_init_thread(multiple);
            if (rank == 0) { mpi_send(to: 1, tag: 0, count: 1); }
            if (rank == 1) { mpi_recv(from: 0, tag: 0); }
            mpi_finalize();
        }
        "#,
    )
    .expect("serial program parses");
    let options = ExploreOptions {
        budget: 10,
        strategy: Strategy::Random,
        ..ExploreOptions::default()
    };
    let report = explore(&program, &options);
    assert_eq!(report.coverage.attempted, 10);
    assert_eq!(report.coverage.analyzed, 1, "{}", report.render("serial"));
    assert_eq!(report.coverage.deduped, 9, "{}", report.render("serial"));
    assert!(!report.partial);
}

#[test]
fn explore_tokens_reproduce_through_check() {
    let program = load("programs/figure1.hmp");
    let options = ExploreOptions {
        budget: 8,
        ..ExploreOptions::default()
    };
    let report = explore(&program, &options);
    assert!(
        !report.violations.is_empty(),
        "figure1 exploration finds its violation: {}",
        report.render("figure1.hmp")
    );
    for found in &report.violations {
        let mut check_options = CheckOptions::new(2, 2);
        check_options.seeds = vec![found.token.seed];
        check_options.sched_policy = found.token.policy();
        check_options.priority_pins = found.token.pins.clone();
        let first = check(&program, &check_options);
        let second = check(&program, &check_options);
        assert_eq!(
            format!("{:?}", first.violations),
            format!("{:?}", second.violations),
            "token {} does not replay deterministically",
            found.token
        );
        assert!(
            first.violations.iter().any(|v| {
                home::core::violation_identity(v)
                    == home::core::violation_identity(&found.violation)
            }),
            "token {} does not reproduce `{}`:\n{}",
            found.token,
            found.violation,
            first.render()
        );
    }
}
