//! # home-core — the HOME checker
//!
//! The paper's tool, end to end:
//!
//! 1. **Static phase** ([`home_static::analyze`]) — CFG walk marking MPI
//!    calls inside OpenMP parallel regions for wrapper instrumentation and
//!    producing the monitored-variable checklist.
//! 2. **Instrumented execution** ([`home_interp::run`]) — the program runs
//!    on the simulated MPI/OpenMP substrates; selected call sites write the
//!    monitored variables (`srctmp`, `tagtmp`, `commtmp`, `requesttmp`,
//!    `collectivetmp`, `finalizetmp`) tagged with thread ids.
//! 3. **Dynamic phase** ([`home_dynamic::detect`]) — lockset + happens-
//!    before concurrency detection over the monitored variables.
//! 4. **Rule matching** ([`match_violations`]) — concurrency results are
//!    matched against the six thread-safety predicates of Section III-A,
//!    yielding [`Violation`]s with source locations.
//!
//! Entry point: [`check`].

// Fallible paths return `HomeError` instead of panicking: a poisoned seed
// or trace must degrade into a partial report, never abort the pipeline.
// Tests are exempt (the attribute is off under cfg(test)).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod fanout;
mod pipeline;
mod replay;
mod report;
mod rules;
mod session;
mod sink;

pub use fanout::{fan_out_indexed, fan_out_indexed_with};
pub use pipeline::{check, check_with_sink, CheckOptions, Engine};
pub use replay::{decode_trace, decode_trace_run};
pub use report::{
    violation_identity, CandidateOutcome, CandidateStatus, EmitOrder, EmittedViolation, HomeReport,
    SeedRun, SeedStatus, Violation, ViolationIdentity, ViolationKind,
};
pub use rules::{match_rules, match_violations, RuleEngine, RuleFinish, RuleOutcome};
pub use session::{Session, SessionOutcome};
pub use sink::{NullViolationSink, ViolationCollector, ViolationSink};
