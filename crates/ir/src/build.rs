//! Ergonomic Rust builder for IR programs.
//!
//! The NPB workload generators construct large programs programmatically;
//! writing raw [`Stmt`] literals is noisy, so this module provides free
//! functions returning unnumbered statements plus [`finalize`] which assigns
//! dense node ids (preorder) and a synthetic line per statement.

#[allow(unused_imports)]
use crate::ast::FuncDef;
use crate::ast::*;

/// An unnumbered statement (ids assigned by [`finalize`]).
pub fn stmt(kind: StmtKind) -> Stmt {
    Stmt {
        id: NodeId(u32::MAX),
        line: 0,
        kind,
    }
}

/// `int name = init;`
pub fn decl(name: &str, init: Expr) -> Stmt {
    stmt(StmtKind::Decl {
        name: name.into(),
        shared: false,
        init,
    })
}

/// `shared int name = init;`
pub fn shared_decl(name: &str, init: Expr) -> Stmt {
    stmt(StmtKind::Decl {
        name: name.into(),
        shared: true,
        init,
    })
}

/// `name = value;`
pub fn assign(name: &str, value: Expr) -> Stmt {
    stmt(StmtKind::Assign {
        name: name.into(),
        value,
    })
}

/// `if (cond) { then_block }`
pub fn if_then(cond: Expr, then_block: Vec<Stmt>) -> Stmt {
    stmt(StmtKind::If {
        cond,
        then_block,
        else_block: Vec::new(),
    })
}

/// `if (cond) { .. } else { .. }`
pub fn if_else(cond: Expr, then_block: Vec<Stmt>, else_block: Vec<Stmt>) -> Stmt {
    stmt(StmtKind::If {
        cond,
        then_block,
        else_block,
    })
}

/// `for var in from..to { body }`
pub fn seq_for(var: &str, from: Expr, to: Expr, body: Vec<Stmt>) -> Stmt {
    stmt(StmtKind::For {
        var: var.into(),
        from,
        to,
        body,
    })
}

/// `omp parallel num_threads(n) { body }`
pub fn omp_parallel(num_threads: Expr, body: Vec<Stmt>) -> Stmt {
    stmt(StmtKind::OmpParallel { num_threads, body })
}

/// `omp for i in from..to { body }` (static schedule).
pub fn omp_for(var: &str, from: Expr, to: Expr, body: Vec<Stmt>) -> Stmt {
    stmt(StmtKind::OmpFor {
        var: var.into(),
        from,
        to,
        schedule: Schedule::Static,
        body,
    })
}

/// `omp for schedule(dynamic, chunk) ...`
pub fn omp_for_dynamic(var: &str, from: Expr, to: Expr, chunk: u64, body: Vec<Stmt>) -> Stmt {
    stmt(StmtKind::OmpFor {
        var: var.into(),
        from,
        to,
        schedule: Schedule::Dynamic { chunk },
        body,
    })
}

/// `omp sections { .. }`
pub fn omp_sections(sections: Vec<Vec<Stmt>>) -> Stmt {
    stmt(StmtKind::OmpSections { sections })
}

/// `omp single { body }`
pub fn omp_single(body: Vec<Stmt>) -> Stmt {
    stmt(StmtKind::OmpSingle { body })
}

/// `omp master { body }`
pub fn omp_master(body: Vec<Stmt>) -> Stmt {
    stmt(StmtKind::OmpMaster { body })
}

/// `omp critical(name) { body }`
pub fn omp_critical(name: &str, body: Vec<Stmt>) -> Stmt {
    stmt(StmtKind::OmpCritical {
        name: name.into(),
        body,
    })
}

/// `omp barrier;`
pub fn omp_barrier() -> Stmt {
    stmt(StmtKind::OmpBarrier)
}

/// `omp atomic name = value;`
pub fn omp_atomic(name: &str, value: Expr) -> Stmt {
    stmt(StmtKind::OmpAtomic {
        name: name.into(),
        value,
    })
}

/// `compute(flops);`
pub fn compute(flops: Expr) -> Stmt {
    stmt(StmtKind::Compute {
        flops,
        reads: Vec::new(),
        writes: Vec::new(),
    })
}

/// `compute(flops, reads: .., writes: ..);`
pub fn compute_rw(flops: Expr, reads: &[&str], writes: &[&str]) -> Stmt {
    stmt(StmtKind::Compute {
        flops,
        reads: reads.iter().map(|s| s.to_string()).collect(),
        writes: writes.iter().map(|s| s.to_string()).collect(),
    })
}

/// Wrap an MPI call.
pub fn mpi(call: MpiStmt) -> Stmt {
    stmt(StmtKind::Mpi(call))
}

/// `mpi_send(to: dest, tag: tag, count: count);`
pub fn send(dest: Expr, tag: Expr, count: Expr) -> Stmt {
    mpi(MpiStmt::Send {
        dest,
        tag,
        count,
        comm: None,
    })
}

/// `mpi_send(..., comm: c);`
pub fn send_on(dest: Expr, tag: Expr, count: Expr, comm: &str) -> Stmt {
    mpi(MpiStmt::Send {
        dest,
        tag,
        count,
        comm: Some(comm.into()),
    })
}

/// `mpi_recv(from: src, tag: tag);`
pub fn recv(src: Expr, tag: Expr) -> Stmt {
    mpi(MpiStmt::Recv {
        src,
        tag,
        comm: None,
    })
}

/// `mpi_recv(..., comm: c);`
pub fn recv_on(src: Expr, tag: Expr, comm: &str) -> Stmt {
    mpi(MpiStmt::Recv {
        src,
        tag,
        comm: Some(comm.into()),
    })
}

/// `call name();`
pub fn call(name: &str) -> Stmt {
    stmt(StmtKind::Call { name: name.into() })
}

/// Assign dense preorder node ids and synthetic lines, producing a program
/// with functions.
pub fn finalize_with_functions(
    name: &str,
    mut functions: Vec<FuncDef>,
    body: Vec<Stmt>,
) -> Program {
    let mut program = finalize(name, body);
    let mut next = program.node_count;
    fn number(stmts: &mut [Stmt], next: &mut u32) {
        for s in stmts {
            if s.id == NodeId(u32::MAX) {
                s.id = NodeId(*next);
                if s.line == 0 {
                    s.line = *next + 1;
                }
                *next += 1;
            }
            match &mut s.kind {
                StmtKind::If {
                    then_block,
                    else_block,
                    ..
                } => {
                    number(then_block, next);
                    number(else_block, next);
                }
                StmtKind::For { body, .. }
                | StmtKind::OmpParallel { body, .. }
                | StmtKind::OmpFor { body, .. }
                | StmtKind::OmpSingle { body }
                | StmtKind::OmpMaster { body }
                | StmtKind::OmpCritical { body, .. } => number(body, next),
                StmtKind::OmpSections { sections } => {
                    for sec in sections {
                        number(sec, next);
                    }
                }
                _ => {}
            }
        }
    }
    for f in &mut functions {
        number(&mut f.body, &mut next);
    }
    program.functions = functions;
    program.node_count = next;
    program
}

/// Assign dense preorder node ids and synthetic lines, producing a program.
pub fn finalize(name: &str, mut body: Vec<Stmt>) -> Program {
    fn number(stmts: &mut [Stmt], next: &mut u32) {
        for s in stmts {
            s.id = NodeId(*next);
            if s.line == 0 {
                s.line = *next + 1;
            }
            *next += 1;
            match &mut s.kind {
                StmtKind::If {
                    then_block,
                    else_block,
                    ..
                } => {
                    number(then_block, next);
                    number(else_block, next);
                }
                StmtKind::For { body, .. }
                | StmtKind::OmpParallel { body, .. }
                | StmtKind::OmpFor { body, .. }
                | StmtKind::OmpSingle { body }
                | StmtKind::OmpMaster { body }
                | StmtKind::OmpCritical { body, .. } => number(body, next),
                StmtKind::OmpSections { sections } => {
                    for sec in sections {
                        number(sec, next);
                    }
                }
                _ => {}
            }
        }
    }
    let mut next = 0;
    number(&mut body, &mut next);
    Program {
        name: name.into(),
        functions: Vec::new(),
        body,
        node_count: next,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::printer::print_program;

    #[test]
    fn builder_assigns_dense_ids() {
        let p = finalize(
            "built",
            vec![
                mpi(MpiStmt::InitThread {
                    required: IrThreadLevel::Multiple,
                }),
                omp_parallel(
                    Expr::int(2),
                    vec![
                        if_then(
                            Expr::bin(BinOp::Eq, Expr::Rank, Expr::int(0)),
                            vec![send(Expr::int(1), Expr::ThreadId, Expr::int(1))],
                        ),
                        omp_barrier(),
                    ],
                ),
                mpi(MpiStmt::Finalize),
            ],
        );
        let mut ids = Vec::new();
        p.visit(&mut |s| ids.push(s.id.0));
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(p.node_count, 6);
    }

    #[test]
    fn built_program_prints_and_reparses() {
        let p = finalize(
            "built",
            vec![
                mpi(MpiStmt::Init),
                omp_parallel(
                    Expr::int(4),
                    vec![
                        omp_for(
                            "i",
                            Expr::int(0),
                            Expr::int(16),
                            vec![compute_rw(Expr::var("i"), &["u"], &["rsd"])],
                        ),
                        omp_critical("acc", vec![assign("x", Expr::int(1))]),
                    ],
                ),
                mpi(MpiStmt::Finalize),
            ],
        );
        let printed = print_program(&p);
        let reparsed = parse(&printed).unwrap();
        assert_eq!(reparsed.stmt_count(), p.stmt_count());
    }
}
