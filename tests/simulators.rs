//! Cross-crate integration tests of the simulated substrates through the
//! direct (non-DSL) API: MPI world + OpenMP runtime on the deterministic
//! scheduler, including randomized checks of messaging invariants driven by
//! a seeded in-repo ChaCha generator (the crates registry is unreachable,
//! so proptest is unavailable); every case is deterministic.

use home::mpi::{payload, MpiConfig, SrcSpec, TagSpec, World};
use home::omp::{OmpCosts, OmpProc};
use home::sched::{Runtime, SchedConfig};
use home::trace::{Collector, Rank, COMM_WORLD};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

fn rng_for(case: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(0x51_4D50 + case)
}

/// Hybrid direct-API smoke test: each rank forks OpenMP threads which do
/// thread-distinct-tag self-exchanges, then all ranks allreduce.
#[test]
fn hybrid_direct_api_end_to_end() {
    let rt = Runtime::new(SchedConfig::deterministic(5));
    let world = World::new(rt.clone(), 3, MpiConfig::test());
    let (collector, sink) = Collector::in_memory();

    for r in 0..3u32 {
        let proc_mpi = world.process(r);
        let omp = OmpProc::with_costs(rt.clone(), Rank(r), collector.clone(), OmpCosts::zero());
        rt.spawn(format!("rank{r}"), move || {
            proc_mpi
                .init_thread(home::trace::ThreadLevel::Multiple)
                .unwrap();
            let p2 = proc_mpi.clone();
            omp.parallel(2, move |ctx| {
                let tag = 500 + ctx.tid().0 as i32;
                p2.send(
                    p2.rank(),
                    tag,
                    COMM_WORLD,
                    payload(vec![ctx.tid().0 as f64]),
                )
                .map_err(|e| match e {
                    home::mpi::MpiError::Sched(s) => s,
                    other => panic!("{other}"),
                })?;
                let (data, _) = p2
                    .recv(SrcSpec::Rank(p2.rank()), TagSpec::Tag(tag), COMM_WORLD)
                    .map_err(|e| match e {
                        home::mpi::MpiError::Sched(s) => s,
                        other => panic!("{other}"),
                    })?;
                assert_eq!(data[0], ctx.tid().0 as f64);
                Ok(())
            })
            .unwrap();
            let sum = proc_mpi
                .allreduce(
                    home::mpi::ReduceOp::Sum,
                    payload(vec![proc_mpi.rank() as f64]),
                    COMM_WORLD,
                )
                .unwrap();
            assert_eq!(sum[0], 3.0);
            proc_mpi.finalize().unwrap();
        });
    }
    rt.run().unwrap();
    let trace = sink.drain();
    assert!(!trace.is_empty());
    assert_eq!(trace.ranks().len(), 3);
}

/// Determinism: two runs with the same seed produce identical traces.
#[test]
fn identical_seeds_identical_traces() {
    let run_once = |seed: u64| {
        let rt = Runtime::new(SchedConfig::deterministic(seed));
        let world = World::new(rt.clone(), 2, MpiConfig::test());
        let (collector, sink) = Collector::in_memory();
        for r in 0..2u32 {
            let p = world.process(r);
            let omp = OmpProc::with_costs(rt.clone(), Rank(r), collector.clone(), OmpCosts::zero());
            rt.spawn(format!("rank{r}"), move || {
                p.init_thread(home::trace::ThreadLevel::Multiple).unwrap();
                omp.parallel(2, move |ctx| {
                    ctx.write_var("x", Some(ctx.tid().0 as u64));
                    ctx.barrier()?;
                    ctx.critical("c", || ())?;
                    Ok(())
                })
                .unwrap();
                p.finalize().unwrap();
            });
        }
        rt.run().unwrap();
        sink.drain()
            .events()
            .iter()
            .map(|e| e.to_string())
            .collect::<Vec<_>>()
    };
    assert_eq!(run_once(99), run_once(99));
}

/// Per-channel FIFO: whatever tags/counts a sender uses, a receiver
/// draining one (src, tag) channel sees payloads in send order.
#[test]
fn messages_never_overtake_on_a_channel() {
    for case in 0..24 {
        let mut rng = rng_for(case);
        let counts: Vec<usize> = (0..rng.gen_range(1usize..8))
            .map(|_| rng.gen_range(1usize..5))
            .collect();
        let seed = rng.gen_range(0u64..50);
        let rt = Runtime::new(SchedConfig::deterministic(seed));
        let world = World::new(rt.clone(), 2, MpiConfig::test());
        let n = counts.len();
        {
            let p = world.process(0);
            let counts = counts.clone();
            rt.spawn("sender", move || {
                p.init_thread(home::trace::ThreadLevel::Multiple).unwrap();
                for (i, c) in counts.iter().enumerate() {
                    p.send(1, 7, COMM_WORLD, payload(vec![i as f64; *c]))
                        .unwrap();
                }
                p.finalize().unwrap();
            });
        }
        {
            let p = world.process(1);
            rt.spawn("receiver", move || {
                p.init_thread(home::trace::ThreadLevel::Multiple).unwrap();
                for i in 0..n {
                    let (data, st) = p
                        .recv(SrcSpec::Rank(0), TagSpec::Tag(7), COMM_WORLD)
                        .unwrap();
                    assert_eq!(data[0] as usize, i, "message overtook");
                    assert_eq!(st.count, data.len());
                }
                p.finalize().unwrap();
            });
        }
        rt.run().unwrap();
        assert_eq!(world.undelivered_messages(), 0, "case {case}");
    }
}

/// Collectives compute correct values for arbitrary contributions.
#[test]
fn allreduce_sum_matches_reference() {
    for case in 0..20 {
        let mut rng = rng_for(1_000 + case);
        let vals: Vec<i32> = (0..3).map(|_| rng.gen_range(-100i32..100)).collect();
        let seed = rng.gen_range(0u64..20);
        let rt = Runtime::new(SchedConfig::deterministic(seed));
        let world = World::new(rt.clone(), 3, MpiConfig::test());
        let expected: f64 = vals.iter().map(|&v| v as f64).sum();
        let vals = Arc::new(vals);
        for r in 0..3u32 {
            let p = world.process(r);
            let vals = Arc::clone(&vals);
            rt.spawn(format!("rank{r}"), move || {
                p.init_thread(home::trace::ThreadLevel::Multiple).unwrap();
                let out = p
                    .allreduce(
                        home::mpi::ReduceOp::Sum,
                        payload(vec![vals[r as usize] as f64]),
                        COMM_WORLD,
                    )
                    .unwrap();
                assert_eq!(out[0], expected);
                p.finalize().unwrap();
            });
        }
        rt.run().unwrap();
    }
}

/// A blocking wildcard receive always returns one of the actually-sent
/// envelopes, and every message is delivered exactly once.
#[test]
fn wildcard_matching_is_a_permutation() {
    for case in 0..30 {
        let mut rng = rng_for(2_000 + case);
        let tags: Vec<i32> = (0..rng.gen_range(2usize..6))
            .map(|_| rng.gen_range(0i32..5))
            .collect();
        let seed = rng.gen_range(0u64..30);
        let rt = Runtime::new(SchedConfig::deterministic(seed));
        let world = World::new(rt.clone(), 2, MpiConfig::test());
        let n = tags.len();
        {
            let p = world.process(0);
            let tags = tags.clone();
            rt.spawn("sender", move || {
                p.init_thread(home::trace::ThreadLevel::Multiple).unwrap();
                for (i, t) in tags.iter().enumerate() {
                    p.send(1, *t, COMM_WORLD, payload(vec![i as f64])).unwrap();
                }
                p.finalize().unwrap();
            });
        }
        let received = Arc::new(parking_lot::Mutex::new(Vec::new()));
        {
            let p = world.process(1);
            let received = Arc::clone(&received);
            rt.spawn("receiver", move || {
                p.init_thread(home::trace::ThreadLevel::Multiple).unwrap();
                for _ in 0..n {
                    let (data, st) = p.recv(SrcSpec::Any, TagSpec::Any, COMM_WORLD).unwrap();
                    received.lock().push((data[0] as usize, st.tag));
                }
                p.finalize().unwrap();
            });
        }
        rt.run().unwrap();
        let mut got = received.lock().clone();
        got.sort_unstable();
        let expected: Vec<(usize, i32)> = tags.iter().copied().enumerate().collect();
        assert_eq!(got, expected, "case {case}");
    }
}
