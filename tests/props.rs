//! Randomized property tests over the core data structures and the language
//! front-end. Uses a seeded in-repo ChaCha generator (the crates registry is
//! unreachable, so proptest is unavailable); every case is deterministic and
//! the failing seed is part of the assertion message.

use home::ir::build as b;
use home::ir::{parse, print_program, BinOp, Expr, IrReduceOp, MpiStmt, Stmt};
use home::trace::{LockId, LockSet, VectorClock};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn rng_for(case: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(0xC0DE_0000 + case)
}

// ---- vector clock laws -----------------------------------------------------

fn gen_vc(rng: &mut ChaCha8Rng) -> VectorClock {
    let mut vc = VectorClock::new();
    for i in 0..rng.gen_range(0usize..6) {
        vc.set(i, rng.gen_range(0u64..20));
    }
    vc
}

#[test]
fn vc_join_is_commutative() {
    for case in 0..256 {
        let mut rng = rng_for(case);
        let (a, c) = (gen_vc(&mut rng), gen_vc(&mut rng));
        let mut ac = a.clone();
        ac.join(&c);
        let mut ca = c.clone();
        ca.join(&a);
        assert_eq!(
            ac.partial_cmp_vc(&ca),
            Some(std::cmp::Ordering::Equal),
            "case {case}: {a:?} ⊔ {c:?}"
        );
    }
}

#[test]
fn vc_join_is_upper_bound() {
    for case in 0..256 {
        let mut rng = rng_for(case);
        let (a, c) = (gen_vc(&mut rng), gen_vc(&mut rng));
        let mut j = a.clone();
        j.join(&c);
        assert!(a.leq(&j) && c.leq(&j), "case {case}: {a:?} ⊔ {c:?} = {j:?}");
    }
}

#[test]
fn vc_join_is_idempotent() {
    for case in 0..256 {
        let mut rng = rng_for(case);
        let a = gen_vc(&mut rng);
        let mut j = a.clone();
        j.join(&a);
        assert!(j.leq(&a) && a.leq(&j), "case {case}: {a:?}");
    }
}

#[test]
fn vc_leq_is_a_partial_order() {
    for case in 0..256 {
        let mut rng = rng_for(case);
        let (a, c, d) = (gen_vc(&mut rng), gen_vc(&mut rng), gen_vc(&mut rng));
        // Reflexive.
        assert!(a.leq(&a), "case {case}");
        // Antisymmetric (up to equality of components).
        if a.leq(&c) && c.leq(&a) {
            assert_eq!(
                a.partial_cmp_vc(&c),
                Some(std::cmp::Ordering::Equal),
                "case {case}"
            );
        }
        // Transitive.
        if a.leq(&c) && c.leq(&d) {
            assert!(a.leq(&d), "case {case}");
        }
    }
}

#[test]
fn vc_tick_strictly_increases() {
    for case in 0..256 {
        let mut rng = rng_for(case);
        let before = gen_vc(&mut rng);
        let slot = rng.gen_range(0usize..8);
        let mut after = before.clone();
        after.tick(slot);
        assert!(before.happens_before(&after), "case {case}: slot {slot}");
    }
}

#[test]
fn vc_concurrent_is_symmetric_and_irreflexive() {
    for case in 0..256 {
        let mut rng = rng_for(case);
        let (a, c) = (gen_vc(&mut rng), gen_vc(&mut rng));
        assert_eq!(a.concurrent_with(&c), c.concurrent_with(&a), "case {case}");
        assert!(!a.concurrent_with(&a), "case {case}");
    }
}

// ---- lockset laws ----------------------------------------------------------

fn gen_lockset(rng: &mut ChaCha8Rng) -> LockSet {
    let mut set = LockSet::new();
    for _ in 0..rng.gen_range(0usize..6) {
        set.insert(LockId(rng.gen_range(0u32..12)));
    }
    set
}

#[test]
fn lockset_intersect_commutes() {
    for case in 0..256 {
        let mut rng = rng_for(case);
        let (a, c) = (gen_lockset(&mut rng), gen_lockset(&mut rng));
        assert_eq!(a.intersect(&c), c.intersect(&a), "case {case}");
    }
}

#[test]
fn lockset_intersection_is_subset() {
    for case in 0..256 {
        let mut rng = rng_for(case);
        let (a, c) = (gen_lockset(&mut rng), gen_lockset(&mut rng));
        let i = a.intersect(&c);
        for l in i.iter() {
            assert!(a.contains(l) && c.contains(l), "case {case}: {l:?}");
        }
        assert_eq!(i.is_empty(), a.disjoint(&c), "case {case}");
    }
}

#[test]
fn lockset_insert_remove_roundtrip() {
    for case in 0..256 {
        let mut rng = rng_for(case);
        let a = gen_lockset(&mut rng);
        let lock = LockId(rng.gen_range(0u32..12));
        let had = a.contains(lock);
        let mut m = a.clone();
        m.insert(lock);
        assert!(m.contains(lock), "case {case}");
        m.remove(lock);
        assert!(!m.contains(lock), "case {case}");
        if !had {
            assert_eq!(m, a, "case {case}");
        }
    }
}

// ---- DSL parse ∘ print round-trip -------------------------------------------

fn gen_name(rng: &mut ChaCha8Rng) -> String {
    // Lowercase identifiers that cannot collide with DSL keywords.
    format!("v{}", rng.gen_range(0u32..40))
}

fn gen_expr(rng: &mut ChaCha8Rng, depth: usize) -> Expr {
    if depth == 0 || rng.gen_bool(0.4) {
        return match rng.gen_range(0u32..7) {
            0 => Expr::Int(rng.gen_range(0i64..100)),
            1 => Expr::Rank,
            2 => Expr::Size,
            3 => Expr::ThreadId,
            4 => Expr::NumThreads,
            5 => Expr::Any,
            _ => Expr::Var(gen_name(rng)),
        };
    }
    match rng.gen_range(0u32..6) {
        0 => Expr::bin(
            BinOp::Add,
            gen_expr(rng, depth - 1),
            gen_expr(rng, depth - 1),
        ),
        1 => Expr::bin(
            BinOp::Mul,
            gen_expr(rng, depth - 1),
            gen_expr(rng, depth - 1),
        ),
        2 => Expr::bin(
            BinOp::Eq,
            gen_expr(rng, depth - 1),
            gen_expr(rng, depth - 1),
        ),
        3 => Expr::bin(
            BinOp::Lt,
            gen_expr(rng, depth - 1),
            gen_expr(rng, depth - 1),
        ),
        4 => Expr::Neg(Box::new(gen_expr(rng, depth - 1))),
        _ => Expr::Not(Box::new(gen_expr(rng, depth - 1))),
    }
}

fn gen_block(rng: &mut ChaCha8Rng, depth: usize, max_len: usize) -> Vec<Stmt> {
    let len = rng.gen_range(1usize..max_len.max(2));
    (0..len).map(|_| gen_stmt(rng, depth)).collect()
}

fn gen_stmt(rng: &mut ChaCha8Rng, depth: usize) -> Stmt {
    if depth == 0 || rng.gen_bool(0.5) {
        return match rng.gen_range(0u32..9) {
            0 => b::decl(&gen_name(rng), gen_expr(rng, 2)),
            1 => b::shared_decl(&gen_name(rng), gen_expr(rng, 2)),
            2 => b::compute(gen_expr(rng, 2)),
            3 => b::send(gen_expr(rng, 1), gen_expr(rng, 1), gen_expr(rng, 1)),
            4 => b::recv(gen_expr(rng, 1), gen_expr(rng, 1)),
            5 => b::mpi(MpiStmt::Barrier { comm: None }),
            6 => b::mpi(MpiStmt::Allreduce {
                op: IrReduceOp::Max,
                count: gen_expr(rng, 1),
                comm: None,
            }),
            7 => b::mpi(MpiStmt::Probe {
                src: gen_expr(rng, 1),
                tag: gen_expr(rng, 1),
                comm: None,
            }),
            _ => b::omp_barrier(),
        };
    }
    match rng.gen_range(0u32..9) {
        0 => b::if_then(gen_expr(rng, 2), gen_block(rng, depth - 1, 4)),
        1 => b::if_else(
            gen_expr(rng, 2),
            gen_block(rng, depth - 1, 4),
            gen_block(rng, depth - 1, 3),
        ),
        2 => b::seq_for(
            &gen_name(rng),
            gen_expr(rng, 1),
            gen_expr(rng, 1),
            gen_block(rng, depth - 1, 4),
        ),
        3 => b::omp_parallel(gen_expr(rng, 1), gen_block(rng, depth - 1, 4)),
        4 => b::omp_for(
            &gen_name(rng),
            gen_expr(rng, 1),
            gen_expr(rng, 1),
            gen_block(rng, depth - 1, 4),
        ),
        5 => b::omp_single(gen_block(rng, depth - 1, 4)),
        6 => b::omp_master(gen_block(rng, depth - 1, 4)),
        7 => b::omp_critical(&gen_name(rng), gen_block(rng, depth - 1, 4)),
        _ => {
            let sections = (0..rng.gen_range(1usize..3))
                .map(|_| gen_block(rng, depth - 1, 3))
                .collect();
            b::omp_sections(sections)
        }
    }
}

/// print ∘ parse ∘ print is the identity on printed form (canonical printer
/// is a fixpoint), and parse succeeds on everything the builder can produce.
#[test]
fn printed_programs_reparse_and_print_identically() {
    for case in 0..64 {
        let mut rng = rng_for(1_000 + case);
        let body = gen_block(&mut rng, 3, 6);
        let program = home::ir::build::finalize("prop", body);
        let printed = print_program(&program);
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("case {case}: printed program must parse: {e}\n{printed}"));
        assert_eq!(reparsed.stmt_count(), program.stmt_count(), "case {case}");
        let printed2 = print_program(&reparsed);
        assert_eq!(printed, printed2, "case {case}");
    }
}

// ---- static analysis invariants ---------------------------------------------

/// Algorithm 1's marking is exactly "syntactically inside an omp parallel
/// region": instrumented ⇒ in-region, and outside-region reachable calls are
/// never instrumented.
#[test]
fn checklist_instruments_only_hybrid_sites() {
    for case in 0..64 {
        let mut rng = rng_for(2_000 + case);
        let body = gen_block(&mut rng, 3, 6);
        let program = home::ir::build::finalize("prop", body);
        let report = home::static_analysis::analyze(&program);
        for site in &report.checklist.sites {
            if site.instrument {
                assert!(site.in_hybrid_region && site.reachable, "case {case}");
            }
            if !site.in_hybrid_region {
                assert!(!site.instrument, "case {case}");
            }
        }
        assert_eq!(
            report.stats.instrumented + report.stats.skipped,
            report.stats.total_mpi_calls,
            "case {case}"
        );
    }
}
