//! Runtime locks (OpenMP `omp_lock_t` and the locks behind `critical`).

use home_sched::{current_vtid, BlockReason, Runtime, SchedResult, Vtid};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

#[derive(Debug, Default)]
struct LockState {
    holder: Option<Vtid>,
    waiters: VecDeque<Vtid>,
}

/// A mutual-exclusion lock over virtual threads, participating in
/// deterministic scheduling and deadlock detection.
///
/// Not reentrant (matching `omp_lock_t`; OpenMP nestable locks are a
/// separate construct this simulator does not need).
#[derive(Clone)]
pub struct OmpLock {
    rt: Runtime,
    name: String,
    state: Arc<Mutex<LockState>>,
}

impl OmpLock {
    /// Create an unlocked lock.
    pub fn new(rt: Runtime, name: impl Into<String>) -> Self {
        OmpLock {
            rt,
            name: name.into(),
            state: Arc::new(Mutex::new(LockState::default())),
        }
    }

    /// The lock's name (critical-section label).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Acquire, blocking through the scheduler.
    pub fn acquire(&self) -> SchedResult<()> {
        let me = current_vtid().expect("OmpLock::acquire outside a virtual thread");
        loop {
            {
                let mut st = self.state.lock();
                match st.holder {
                    None => {
                        st.holder = Some(me);
                        return Ok(());
                    }
                    Some(h) => {
                        assert_ne!(h, me, "OmpLock is not reentrant: {}", self.name);
                        if !st.waiters.contains(&me) {
                            st.waiters.push_back(me);
                        }
                    }
                }
            }
            self.rt
                .block_current(BlockReason::Lock(self.name.clone()))?;
        }
    }

    /// Try to acquire without blocking.
    pub fn try_acquire(&self) -> bool {
        let me = current_vtid().expect("OmpLock::try_acquire outside a virtual thread");
        let mut st = self.state.lock();
        if st.holder.is_none() {
            st.holder = Some(me);
            true
        } else {
            false
        }
    }

    /// Release; panics if the caller does not hold the lock.
    pub fn release(&self) {
        let me = current_vtid().expect("OmpLock::release outside a virtual thread");
        let next = {
            let mut st = self.state.lock();
            assert_eq!(
                st.holder,
                Some(me),
                "OmpLock::release by non-holder: {}",
                self.name
            );
            st.holder = None;
            st.waiters.pop_front()
        };
        if let Some(w) = next {
            self.rt.unblock(w);
        }
    }

    /// True if some thread currently holds the lock.
    pub fn is_held(&self) -> bool {
        self.state.lock().holder.is_some()
    }
}

impl std::fmt::Debug for OmpLock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OmpLock")
            .field("name", &self.name)
            .field("held", &self.is_held())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use home_sched::{SchedConfig, SchedError};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn mutual_exclusion_under_contention() {
        let rt = Runtime::new(SchedConfig::deterministic(1));
        let lock = OmpLock::new(rt.clone(), "cs");
        let inside = Arc::new(AtomicUsize::new(0));
        let max_seen = Arc::new(AtomicUsize::new(0));
        for i in 0..4 {
            let lock = lock.clone();
            let rt2 = rt.clone();
            let inside = Arc::clone(&inside);
            let max_seen = Arc::clone(&max_seen);
            rt.spawn(format!("t{i}"), move || {
                for _ in 0..10 {
                    lock.acquire().unwrap();
                    let n = inside.fetch_add(1, Ordering::SeqCst) + 1;
                    max_seen.fetch_max(n, Ordering::SeqCst);
                    rt2.yield_now().unwrap();
                    inside.fetch_sub(1, Ordering::SeqCst);
                    lock.release();
                }
            });
        }
        rt.run().unwrap();
        assert_eq!(max_seen.load(Ordering::SeqCst), 1, "never two holders");
        assert!(!lock.is_held());
    }

    #[test]
    fn try_acquire_fails_when_held() {
        let rt = Runtime::new(SchedConfig::deterministic(0));
        let lock = OmpLock::new(rt.clone(), "cs");
        let l2 = lock.clone();
        let rt2 = rt.clone();
        rt.spawn("a", move || {
            assert!(l2.try_acquire());
            rt2.yield_now().unwrap();
            rt2.yield_now().unwrap();
            l2.release();
        });
        let l3 = lock.clone();
        let rt3 = rt.clone();
        rt.spawn("b", move || {
            rt3.yield_now().unwrap();
            // `a` probably holds it now — but regardless, the final state
            // must end with a successful blocking acquire.
            let _ = l3.try_acquire() || {
                l3.acquire().unwrap();
                true
            };
            l3.release();
        });
        rt.run().unwrap();
    }

    #[test]
    fn self_deadlock_on_held_lock_is_detected() {
        let rt = Runtime::new(SchedConfig::deterministic(2));
        let lock = OmpLock::new(rt.clone(), "held-forever");
        let l1 = lock.clone();
        rt.spawn("holder-then-blocker", {
            let rt = rt.clone();
            move || {
                l1.acquire().unwrap();
                // Block on something that never comes while holding the lock.
                let _ = rt.block_current(BlockReason::Other("never".into()));
            }
        });
        let l2 = lock.clone();
        rt.spawn("waiter", move || {
            let e = l2.acquire().unwrap_err();
            assert!(matches!(e, SchedError::Deadlock(_)));
        });
        let err = rt.run().unwrap_err();
        match err {
            SchedError::Deadlock(info) => assert!(info.involves("held-forever")),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }
}
