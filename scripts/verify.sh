#!/usr/bin/env bash
# Tier-1 verification: build + test + formatting + lints, fully offline.
# Run from anywhere; operates on the repository containing this script.
set -euo pipefail

cd "$(dirname "$0")/.."

# Everything resolves to path dependencies (shims/ for external crates), so
# --offline must always work; it also guards against accidental network use.
echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test --offline"
cargo test -q --offline

# The streaming engine's acceptance bar: byte-identical reports vs the
# batch engine on every bundled program/seed/jobs combination. Part of the
# suite above, but run explicitly so a parity break names itself.
echo "==> engine parity (batch vs stream)"
cargo test -q --offline --test stream_parity

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

# Panic-free gate: the base types (home-trace), the pipeline (home-core),
# the detectors (home-dynamic, home-stream), and the CLI must not
# unwrap/expect on fallible paths — failures become typed HomeErrors and
# partial reports. --no-deps keeps the lints scoped to exactly these
# crates; no --all-targets, so #[cfg(test)] code is exempt. (The same
# policy is pinned in-source via crate-root deny attributes.)
echo "==> clippy unwrap/expect gate (home-trace, home-core, home-dynamic, home-stream, home-serve, home-explore, home-static, CLI)"
cargo clippy --offline --no-deps -p home-trace -p home-core -p home-dynamic -p home-stream \
    -p home-serve -p home-explore -p home-static \
    -- -D warnings -D clippy::unwrap-used -D clippy::expect-used
cargo clippy --offline --no-deps -p home --bins \
    -- -D warnings -D clippy::unwrap-used -D clippy::expect-used

# Watch smoke: the live pipeline must stream at least one violation line
# and agree with `check` on the verdict (exit code) for the paper's
# figure2 case study. Both commands exit 1 on findings, so capture codes
# explicitly under `set -e`.
echo "==> home watch smoke (figure2)"
check_code=0
./target/release/home check programs/figure2.hmp > /dev/null || check_code=$?
watch_out="$(mktemp)"
watch_code=0
./target/release/home watch programs/figure2.hmp > "$watch_out" || watch_code=$?
grep -q "Violation" "$watch_out" || {
    echo "watch smoke: no violation line streamed" >&2
    cat "$watch_out" >&2
    exit 1
}
grep -q "watch: done" "$watch_out" || {
    echo "watch smoke: missing final summary" >&2
    exit 1
}
rm -f "$watch_out"
if [ "$watch_code" -ne "$check_code" ]; then
    echo "watch smoke: exit code $watch_code != check's $check_code" >&2
    exit 1
fi

# Serve smoke: the collector daemon must ingest a recorded trace over a
# temp UDS and report the exact violation lines `home check` finds, then
# shut down cleanly. `submit` exits 1 on findings, like check/replay.
echo "==> home serve smoke (figure2 over a temp UDS)"
serve_dir="$(mktemp -d)"
serve_sock="$serve_dir/collector.sock"
serve_trace="$serve_dir/figure2.hbt"
./target/release/home record programs/figure2.hmp -o "$serve_trace" --seeds 1,2 > /dev/null
./target/release/home serve --socket "$serve_sock" > "$serve_dir/daemon.log" &
serve_pid=$!
for _ in $(seq 1 100); do
    [ -S "$serve_sock" ] && break
    sleep 0.05
done
replay_out="$serve_dir/replay.out"
submit_out="$serve_dir/submit.out"
replay_code=0
./target/release/home replay "$serve_trace" > "$replay_out" || replay_code=$?
submit_code=0
./target/release/home submit "$serve_trace" --socket "$serve_sock" > "$submit_out" || submit_code=$?
if [ "$submit_code" -ne "$replay_code" ]; then
    echo "serve smoke: submit exit $submit_code != replay's $replay_code" >&2
    exit 1
fi
if ! diff <(grep '^  - ' "$replay_out" | sort) <(grep '^  - ' "$submit_out" | sort); then
    echo "serve smoke: daemon verdict differs from replay" >&2
    exit 1
fi
./target/release/home serve --socket "$serve_sock" --status | grep -q '"predicate"' || {
    echo "serve smoke: STATUS report lacks aggregated violations" >&2
    exit 1
}
./target/release/home serve --socket "$serve_sock" --stop > /dev/null
serve_code=0
wait "$serve_pid" || serve_code=$?
if [ "$serve_code" -ne 0 ]; then
    echo "serve smoke: daemon exited $serve_code after --stop" >&2
    exit 1
fi
rm -rf "$serve_dir"

# v2 round-trip: `record --compress` must produce a smaller trace whose
# parallel replay (`--jobs 4`) prints the exact verdict lines and exit
# code of `check` — the compressed, seek-indexed format may never change
# a verdict.
echo "==> HBT v2 round-trip (record --compress -> replay --jobs 4 == check)"
v2_dir="$(mktemp -d)"
./target/release/home record programs/figure2.hmp -o "$v2_dir/fig2.hbt" > /dev/null
./target/release/home record programs/figure2.hmp -o "$v2_dir/fig2.v2.hbt" --compress > /dev/null
v1_size=$(wc -c < "$v2_dir/fig2.hbt")
v2_size=$(wc -c < "$v2_dir/fig2.v2.hbt")
if [ "$v2_size" -ge "$v1_size" ]; then
    echo "v2 round-trip: --compress did not shrink the trace ($v2_size >= $v1_size)" >&2
    exit 1
fi
check_code=0
./target/release/home check programs/figure2.hmp > "$v2_dir/check.out" || check_code=$?
v2_code=0
./target/release/home replay "$v2_dir/fig2.v2.hbt" --jobs 4 > "$v2_dir/replay.out" || v2_code=$?
if [ "$v2_code" -ne "$check_code" ]; then
    echo "v2 round-trip: replay exit $v2_code != check's $check_code" >&2
    exit 1
fi
if ! diff <(grep -o 'is[A-Za-z]*Violation' "$v2_dir/check.out" | sort -u) \
          <(grep -o 'is[A-Za-z]*Violation' "$v2_dir/replay.out" | sort -u); then
    echo "v2 round-trip: compressed replay verdict differs from check" >&2
    exit 1
fi
serial_out="$v2_dir/replay1.out"
./target/release/home replay "$v2_dir/fig2.v2.hbt" --jobs 1 > "$serial_out" || true
if ! diff "$serial_out" "$v2_dir/replay.out"; then
    echo "v2 round-trip: --jobs 1 and --jobs 4 output differ" >&2
    exit 1
fi

# Batch parity: forcing the feed granularity (`--batch`) may never change
# a replay's output — byte-identical at every batch size, on both the v1
# and the compressed v2 recording.
echo "==> batch parity (replay --batch {1,7} == replay == check)"
for b in 1 7; do
    for t in fig2.hbt fig2.v2.hbt; do
        batch_out="$v2_dir/replay_batch_${b}_${t}.out"
        ./target/release/home replay "$v2_dir/$t" --batch "$b" > "$batch_out" || true
        if ! diff "$batch_out" "$serial_out"; then
            echo "batch parity: $t --batch $b output differs from default replay" >&2
            exit 1
        fi
    done
done
rm -rf "$v2_dir"

# Explore smoke: a small budget on the paper's figure1 must find the known
# initialization violation (exit 1), print a reproduction token, and that
# token must replay through `check` to the same verdict (exit 1).
echo "==> home explore smoke (figure1, budget 8)"
explore_dir="$(mktemp -d)"
explore_code=0
./target/release/home explore programs/figure1.hmp --budget 8 > "$explore_dir/explore.out" || explore_code=$?
if [ "$explore_code" -ne 1 ]; then
    echo "explore smoke: expected exit 1 (violation found), got $explore_code" >&2
    cat "$explore_dir/explore.out" >&2
    exit 1
fi
grep -q "isInitializationViolation" "$explore_dir/explore.out" || {
    echo "explore smoke: figure1 violation not found" >&2
    cat "$explore_dir/explore.out" >&2
    exit 1
}
repro_flags=$(grep -m1 'reproduce: home check' "$explore_dir/explore.out" \
    | sed 's/.*reproduce: home check //')
repro_code=0
# shellcheck disable=SC2086  # the token is a flag list by construction
./target/release/home check $repro_flags > "$explore_dir/repro.out" || repro_code=$?
if [ "$repro_code" -ne 1 ] || ! grep -q "isInitializationViolation" "$explore_dir/repro.out"; then
    echo "explore smoke: token '$repro_flags' did not reproduce the violation (exit $repro_code)" >&2
    cat "$explore_dir/repro.out" >&2
    exit 1
fi
rm -rf "$explore_dir"

# Static smoke: `home static` must run clean over the whole bundled corpus
# (exit 0 or 1 only — never a crash or usage error), agree with the pinned
# classifications (pipeline.hmp has no candidates, interproc2.hmp has
# some), and emit JSON that actually carries the candidates array.
echo "==> home static smoke (bundled corpus)"
for prog in programs/*.hmp; do
    static_code=0
    ./target/release/home static "$prog" > /dev/null || static_code=$?
    if [ "$static_code" -gt 1 ]; then
        echo "static smoke: $prog exited $static_code (expected 0 or 1)" >&2
        exit 1
    fi
done
static_code=0
./target/release/home static programs/pipeline.hmp > /dev/null || static_code=$?
if [ "$static_code" -ne 0 ]; then
    echo "static smoke: pipeline.hmp should be candidate-free, exit $static_code" >&2
    exit 1
fi
static_code=0
./target/release/home static programs/interproc2.hmp > /dev/null || static_code=$?
if [ "$static_code" -ne 1 ]; then
    echo "static smoke: interproc2.hmp should report candidates, exit $static_code" >&2
    exit 1
fi
# (exit 1 is expected here — candidates found — so guard the pipe)
(./target/release/home static programs/interproc2.hmp --json || true) \
    | grep -q '"candidates"' || {
    echo "static smoke: --json output lacks the candidates array" >&2
    exit 1
}

# Bench smoke: the throughput harness must build and complete one quick
# pass (catches bit-rot in home-bench without paying for a full run; the
# checked-in numbers live in BENCH_throughput.json).
echo "==> bench smoke (throughput --quick)"
cargo build --release --offline -p home-bench
./target/release/throughput --quick > /dev/null

echo "verify: all checks passed"
