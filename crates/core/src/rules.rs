//! Matching concurrency results against the six thread-safety rules
//! (paper Section III-A).
//!
//! Inputs: the recorded trace (for initialization levels, fork events, and
//! per-call metadata), the monitored-variable races from the dynamic phase,
//! and the simulator's runtime incidents (e.g. calls after finalize).
//! Output: concrete [`Violation`]s with source locations.

use crate::report::{Violation, ViolationKind};
use home_dynamic::{Race, RaceAccess};
use home_interp::MpiIncident;
use home_trace::{
    Event, EventKind, MemLoc, MonitoredVar, MpiCallRecord, Rank, SrcLoc, ThreadLevel, Trace,
};
use std::collections::{BTreeMap, BTreeSet};

/// What one rule-matching pass produced: the classified violations plus
/// the races the rules could *not* classify (monitored-variable races whose
/// accesses lack MPI call metadata — possible with hand-built or corrupted
/// offline traces). Unclassifiable races are reported, not unwrapped: they
/// surface in the report as degraded diagnostics instead of a panic.
#[derive(Debug, Clone, Default)]
pub struct RuleOutcome {
    /// Concrete violations, matched and deduplicated.
    pub violations: Vec<Violation>,
    /// Monitored-variable races the rules had to skip because one or both
    /// accesses carry no MPI call record.
    pub unclassified: Vec<Race>,
}

/// Match rules over one run's evidence, returning only the violations.
///
/// Convenience wrapper over [`match_rules`] for callers that do not care
/// about unclassifiable races.
pub fn match_violations(
    trace: &Trace,
    races: &[Race],
    incidents: &[MpiIncident],
) -> Vec<Violation> {
    match_rules(trace, races, incidents).violations
}

/// Match rules over one run's evidence.
///
/// Races on monitored variables whose accesses lack MPI metadata cannot be
/// matched against any rule; they are collected into
/// [`RuleOutcome::unclassified`] rather than panicking mid-pipeline.
pub fn match_rules(trace: &Trace, races: &[Race], incidents: &[MpiIncident]) -> RuleOutcome {
    let mut ctx = RuleCtx::new();
    for e in trace.events() {
        ctx.observe(e);
    }
    match_rules_ctx(&ctx, races, incidents)
}

/// Match rules against an incrementally-gathered [`RuleCtx`] — the
/// streaming counterpart of [`match_rules`] for callers (the streaming
/// check engine, `home replay`) that fed events through
/// [`RuleCtx::observe`] instead of materializing a trace.
pub fn match_rules_ctx(ctx: &RuleCtx, races: &[Race], incidents: &[MpiIncident]) -> RuleOutcome {
    let mut out = Vec::new();

    // A monitored-location race is only matchable when both sides carry
    // their MPI call records; partition the rest off up front.
    let unclassified: Vec<Race> = races
        .iter()
        .filter(|r| matches!(r.loc, MemLoc::Monitored(_)) && !r.is_monitored())
        .cloned()
        .collect();

    initialization_rule(ctx, races, &mut out);
    finalization_rule(ctx, races, incidents, &mut out);
    concurrent_recv_rule(races, &mut out);
    concurrent_request_rule(races, &mut out);
    probe_rule(races, &mut out);
    collective_rule(races, incidents, &mut out);

    RuleOutcome {
        violations: dedupe(out),
        unclassified,
    }
}

/// The evidence the rules need from a run, gathered event by event.
/// Ordered maps throughout: rules iterate these, and violation order must
/// be deterministic (it is part of the rendered report).
///
/// Observing a trace's events in sequence order produces a context
/// identical to batch-gathering the materialized trace, so rule matching
/// is order-for-order the same in both engines.
#[derive(Debug, Clone, Default)]
pub struct RuleCtx {
    /// Thread level each rank initialized with.
    init_levels: BTreeMap<Rank, ThreadLevel>,
    /// Ranks that forked a multi-thread parallel region.
    multi_threaded: BTreeSet<Rank>,
    /// Instrumented MPI calls inside parallel regions, per rank.
    region_calls: Vec<(Rank, MpiCallRecord, Option<SrcLoc>)>,
    /// Finalize monitored writes (rank, record, loc, time).
    finalizes: Vec<(Rank, MpiCallRecord, Option<SrcLoc>, u64)>,
    /// Latest MPI-call event time per rank.
    last_call_time: BTreeMap<Rank, u64>,
}

impl RuleCtx {
    /// An empty context.
    pub fn new() -> RuleCtx {
        RuleCtx::default()
    }

    /// Fold one event into the context.
    pub fn observe(&mut self, e: &Event) {
        match &e.kind {
            EventKind::MpiInit { level, .. } => {
                self.init_levels.entry(e.rank).or_insert(*level);
            }
            EventKind::Fork { nthreads, .. } if *nthreads > 1 => {
                self.multi_threaded.insert(e.rank);
            }
            EventKind::MpiCall { call } => {
                if e.region.is_some() {
                    self.region_calls
                        .push((e.rank, call.clone(), e.loc.clone()));
                }
                let t = self.last_call_time.entry(e.rank).or_insert(0);
                *t = (*t).max(e.time_ns);
            }
            EventKind::MonitoredWrite { var, call } if *var == MonitoredVar::Finalize => {
                self.finalizes
                    .push((e.rank, call.clone(), e.loc.clone(), e.time_ns));
            }
            _ => {}
        }
    }
}

fn locations(accesses: &[&RaceAccess]) -> Vec<SrcLoc> {
    let mut locs: Vec<SrcLoc> = accesses.iter().filter_map(|a| a.loc.clone()).collect();
    locs.sort();
    locs.dedup();
    locs
}

/// Envelope collision: the messages the two calls handle are not
/// differentiated — tags equal or either side a wildcard, same for peers,
/// and the same communicator.
fn envelope_collides(a: &MpiCallRecord, b: &MpiCallRecord) -> bool {
    let field = |x: Option<i32>, y: Option<i32>| match (x, y) {
        (Some(x), Some(y)) => x == y || x < 0 || y < 0,
        // Calls without the argument do not differentiate on it.
        _ => true,
    };
    a.comm == b.comm && field(a.tag, b.tag) && field(a.peer, b.peer)
}

fn monitored_race_on(races: &[Race], var: MonitoredVar) -> impl Iterator<Item = &Race> {
    races
        .iter()
        .filter(move |r| r.loc == MemLoc::Monitored(var) && r.is_monitored())
}

/// Both sides' MPI call records, or `None` when the race carries no MPI
/// metadata and cannot be matched against any rule. Rule matchers skip
/// such races (they were already classified as [`RuleOutcome::unclassified`]
/// by `match_rules`) instead of unwrapping.
fn mpi_pair(race: &Race) -> Option<(&MpiCallRecord, &MpiCallRecord)> {
    Some((race.first.mpi.as_ref()?, race.second.mpi.as_ref()?))
}

fn initialization_rule(ctx: &RuleCtx, races: &[Race], out: &mut Vec<Violation>) {
    for (&rank, &level) in &ctx.init_levels {
        match level {
            ThreadLevel::Single => {
                // MPI_THREAD_SINGLE but an OpenMP parallel region issues
                // MPI calls.
                let calls: Vec<&(Rank, MpiCallRecord, Option<SrcLoc>)> = ctx
                    .region_calls
                    .iter()
                    .filter(|(r, _, _)| *r == rank)
                    .collect();
                if ctx.multi_threaded.contains(&rank) && !calls.is_empty() {
                    let mut locs: Vec<SrcLoc> =
                        calls.iter().filter_map(|(_, _, l)| l.clone()).collect();
                    locs.sort();
                    locs.dedup();
                    out.push(Violation {
                        kind: ViolationKind::Initialization,
                        rank,
                        description: format!(
                            "process initialized with {level} but {} MPI call(s) execute inside an OpenMP parallel region",
                            calls.len()
                        ),
                        locations: locs,
                    });
                }
            }
            ThreadLevel::Serialized => {
                // Any concurrent monitored-variable race on this rank means
                // two threads were inside MPI at the same time.
                let racy: Vec<&Race> = races
                    .iter()
                    .filter(|r| r.rank == rank && r.is_monitored())
                    .collect();
                if let Some(first) = racy.first() {
                    out.push(Violation {
                        kind: ViolationKind::Initialization,
                        rank,
                        description: format!(
                            "{level} allows only one thread in MPI at a time, but concurrent MPI calls were detected on {}",
                            first.loc
                        ),
                        locations: locations(&[&first.first, &first.second]),
                    });
                }
            }
            ThreadLevel::Funneled => {
                // Only the main thread may call MPI.
                if let Some((_, call, loc)) = ctx
                    .region_calls
                    .iter()
                    .find(|(r, c, _)| *r == rank && !c.is_main_thread)
                {
                    out.push(Violation {
                        kind: ViolationKind::Initialization,
                        rank,
                        description: format!(
                            "{level} restricts MPI to the main thread, but {} was issued by a worker thread",
                            call.kind
                        ),
                        locations: loc.clone().into_iter().collect(),
                    });
                }
            }
            ThreadLevel::Multiple => {}
        }
    }
}

fn finalization_rule(
    ctx: &RuleCtx,
    races: &[Race],
    incidents: &[MpiIncident],
    out: &mut Vec<Violation>,
) {
    // (a) Finalize issued off the main thread.
    for (rank, call, loc, _) in &ctx.finalizes {
        if !call.is_main_thread {
            out.push(Violation {
                kind: ViolationKind::Finalization,
                rank: *rank,
                description: "MPI_Finalize must be called by the main thread".into(),
                locations: loc.clone().into_iter().collect(),
            });
        }
    }
    // (b) MPI communication attempted after finalize (the simulator reports
    // those calls as incidents).
    for i in incidents {
        if i.error.contains("after MPI_Finalize") {
            out.push(Violation {
                kind: ViolationKind::Finalization,
                rank: Rank(i.rank),
                description: format!("{} issued after MPI_Finalize", i.call),
                locations: vec![SrcLoc::new("", i.line)],
            });
        }
    }
    // (c) Finalize concurrent with other MPI activity (race on finalizetmp).
    for race in monitored_race_on(races, MonitoredVar::Finalize) {
        out.push(Violation {
            kind: ViolationKind::Finalization,
            rank: race.rank,
            description: "concurrent MPI_Finalize calls from multiple threads".into(),
            locations: locations(&[&race.first, &race.second]),
        });
    }
}

fn concurrent_recv_rule(races: &[Race], out: &mut Vec<Violation>) {
    for race in monitored_race_on(races, MonitoredVar::Tag) {
        let Some((a, b)) = mpi_pair(race) else {
            continue;
        };
        if a.kind.is_recv() && b.kind.is_recv() && envelope_collides(a, b) {
            out.push(Violation {
                kind: ViolationKind::ConcurrentRecv,
                rank: race.rank,
                description: format!(
                    "concurrent {} and {} with undistinguished envelope (tag {:?}, peer {:?}, {}) — message matching order is undefined",
                    a.kind, b.kind, a.tag, a.peer, a.comm
                ),
                locations: locations(&[&race.first, &race.second]),
            });
        }
    }
}

fn concurrent_request_rule(races: &[Race], out: &mut Vec<Violation>) {
    for race in monitored_race_on(races, MonitoredVar::Request) {
        let Some((a, b)) = mpi_pair(race) else {
            continue;
        };
        if let (true, true, Some(request)) =
            (a.kind.is_completion(), b.kind.is_completion(), a.request)
        {
            if Some(request) != b.request {
                continue;
            }
            out.push(Violation {
                kind: ViolationKind::ConcurrentRequest,
                rank: race.rank,
                description: format!(
                    "{} and {} concurrently completing the same request {request}",
                    a.kind, b.kind
                ),
                locations: locations(&[&race.first, &race.second]),
            });
        }
    }
}

fn probe_rule(races: &[Race], out: &mut Vec<Violation>) {
    for race in monitored_race_on(races, MonitoredVar::Tag) {
        let Some((a, b)) = mpi_pair(race) else {
            continue;
        };
        let probe_pair = (a.kind.is_probe() && (b.kind.is_probe() || b.kind.is_recv()))
            || (b.kind.is_probe() && (a.kind.is_probe() || a.kind.is_recv()));
        if probe_pair && envelope_collides(a, b) {
            out.push(Violation {
                kind: ViolationKind::Probe,
                rank: race.rank,
                description: format!(
                    "concurrent {} and {} with the same source/tag on {} — the probed message may be stolen",
                    a.kind, b.kind, a.comm
                ),
                locations: locations(&[&race.first, &race.second]),
            });
        }
    }
}

fn collective_rule(races: &[Race], incidents: &[MpiIncident], out: &mut Vec<Violation>) {
    for race in monitored_race_on(races, MonitoredVar::Collective) {
        let Some((a, b)) = mpi_pair(race) else {
            continue;
        };
        if a.kind.is_collective() && b.kind.is_collective() && a.comm == b.comm {
            out.push(Violation {
                kind: ViolationKind::CollectiveCall,
                rank: race.rank,
                description: format!(
                    "{} and {} concurrently on {} from threads of one process",
                    a.kind, b.kind, a.comm
                ),
                locations: locations(&[&race.first, &race.second]),
            });
        }
    }
    // Supporting evidence: slot corruption the simulator actually observed.
    for i in incidents {
        if i.error.contains("collective mismatch") {
            out.push(Violation {
                kind: ViolationKind::CollectiveCall,
                rank: Rank(i.rank),
                description: format!("collective slot corruption observed: {}", i.error),
                locations: vec![SrcLoc::new("", i.line)],
            });
        }
    }
}

fn dedupe(violations: Vec<Violation>) -> Vec<Violation> {
    let mut seen: BTreeSet<(ViolationKind, Rank, Vec<SrcLoc>)> = BTreeSet::new();
    let mut out = Vec::new();
    for v in violations {
        let key = (v.kind, v.rank, v.locations.clone());
        if seen.insert(key) {
            out.push(v);
        }
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use home_trace::{AccessKind, MpiCallKind, Tid, COMM_WORLD};

    fn record(kind: MpiCallKind, tag: Option<i32>, main: bool) -> MpiCallRecord {
        MpiCallRecord {
            kind,
            peer: Some(0),
            tag,
            comm: COMM_WORLD,
            request: None,
            is_main_thread: main,
            thread_level: Some(ThreadLevel::Multiple),
        }
    }

    #[test]
    fn envelope_collision_logic() {
        let a = record(MpiCallKind::Recv, Some(0), false);
        let b = record(MpiCallKind::Recv, Some(0), false);
        assert!(envelope_collides(&a, &b));
        let c = record(MpiCallKind::Recv, Some(1), false);
        assert!(!envelope_collides(&a, &c), "distinct tags differentiate");
        let any = record(MpiCallKind::Recv, Some(-1), false);
        assert!(envelope_collides(&a, &any), "wildcard collides with all");
        let mut other_comm = record(MpiCallKind::Recv, Some(0), false);
        other_comm.comm = home_trace::CommId(1);
        assert!(!envelope_collides(&a, &other_comm));
    }

    #[test]
    fn non_mpi_monitored_race_is_unclassified_not_a_panic() {
        // A hand-built race on a monitored variable whose accesses carry no
        // MPI call records (possible with corrupted or synthetic offline
        // traces). Every rule must skip it; match_rules reports it as
        // unclassified instead of unwrapping.
        let access = |seq| RaceAccess {
            seq,
            tid: Tid(seq as u32),
            region: None,
            kind: AccessKind::Write,
            loc: None,
            mpi: None,
        };
        let race = Race {
            rank: Rank(0),
            loc: MemLoc::Monitored(MonitoredVar::Tag),
            first: access(1),
            second: access(2),
        };
        let outcome = match_rules(&Trace::default(), std::slice::from_ref(&race), &[]);
        assert!(outcome.violations.is_empty());
        assert_eq!(outcome.unclassified.len(), 1);
        assert_eq!(outcome.unclassified[0], race);

        // The convenience wrapper drops the unclassified set silently.
        let vs = match_violations(&Trace::default(), &[race], &[]);
        assert!(vs.is_empty());
    }

    #[test]
    fn dedupe_removes_identical_violations() {
        let v = Violation {
            kind: ViolationKind::Probe,
            rank: Rank(0),
            description: "x".into(),
            locations: vec![SrcLoc::new("a", 1)],
        };
        let out = dedupe(vec![v.clone(), v.clone()]);
        assert_eq!(out.len(), 1);
    }
}
