//! Static deadlock / violation candidates.
//!
//! A *candidate* is a site-level warning the static phase can justify
//! before any run: it names the pattern, the line, and — when the pattern
//! maps onto one of the paper's six violation classes — the predicate the
//! dynamic phase would report. `home-core` cross-checks candidates against
//! the dynamic findings (confirmed / not reproduced / dynamic-only).
//!
//! Two passes, both over the interprocedural facts already attached to the
//! checklist sites plus the function summaries:
//!
//! 1. **Wait-cycle candidates** ([`CandidateKind::PotentialDeadlock`]):
//!    a blocking MPI call executed while a critical section is provably
//!    held, in a context where multiple threads run — sibling threads
//!    serialize behind the lock while the call waits on a peer, so any
//!    peer-side dependency on this process closes a wait cycle. Plus the
//!    classic lock-order inversion: two lock pairs acquired in opposite
//!    nesting orders anywhere in the program.
//! 2. **Unprotected monitored writes**
//!    ([`CandidateKind::UnprotectedMonitoredWrite`]): a multi-thread site
//!    with no must-held lock whose envelope cannot distinguish threads —
//!    a receive/probe whose tag and peer are not thread-distinct, or any
//!    collective — i.e. the statically visible shape of the concurrent-
//!    recv, probe, and collective-call violations.

use crate::checklist::StaticCallSite;
use crate::summary::Summaries;
use home_ir::{Program, Stmt, StmtKind};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// The two candidate classes the static phase emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CandidateKind {
    /// A wait cycle is statically possible (blocking call under a lock in
    /// a multi-threaded context, or a lock-order inversion).
    PotentialDeadlock,
    /// A monitored variable is written with no protecting lock and no
    /// thread-distinct envelope.
    UnprotectedMonitoredWrite,
}

impl CandidateKind {
    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            CandidateKind::PotentialDeadlock => "potential deadlock",
            CandidateKind::UnprotectedMonitoredWrite => "unprotected monitored write",
        }
    }
}

/// One static candidate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StaticCandidate {
    /// Candidate class.
    pub kind: CandidateKind,
    /// 1-based source line of the implicated site.
    pub line: u32,
    /// Surface name of the implicated call (`mpi_recv`, …), or a lock-pair
    /// description for lock-order inversions.
    pub site: String,
    /// Why the static phase flags it.
    pub description: String,
    /// The paper predicate the dynamic phase would report if the candidate
    /// manifests (`None` for deadlock candidates — deadlocks are reported
    /// outside the six classes).
    pub violation_hint: Option<String>,
}

/// MPI calls that block until a peer (or the whole communicator) makes
/// progress: receives, synchronous sends, completions, probes, collectives.
fn is_blocking(site: &StaticCallSite) -> bool {
    site.is_collective
        || matches!(
            site.name.as_str(),
            "mpi_recv" | "mpi_ssend" | "mpi_wait" | "mpi_waitall" | "mpi_probe"
        )
}

/// Run both candidate passes.
pub(crate) fn candidates(
    program: &Program,
    sites: &[StaticCallSite],
    summaries: &Summaries,
) -> Vec<StaticCandidate> {
    let mut out = Vec::new();

    for site in sites.iter().filter(|s| s.instrument) {
        // Pass 1a: blocking call under a must-held lock, multiple threads.
        if site.multi_thread && !site.must_locks.is_empty() && is_blocking(site) {
            out.push(StaticCandidate {
                kind: CandidateKind::PotentialDeadlock,
                line: site.line,
                site: site.name.clone(),
                description: format!(
                    "blocking {} while holding critical({}) in a multi-threaded region: \
                     sibling threads serialize behind the lock while the call waits on a peer",
                    site.name,
                    site.must_locks.join(", "),
                ),
                violation_hint: None,
            });
        }
        // Pass 2: unprotected monitored write with a colliding envelope.
        if site.multi_thread && site.must_locks.is_empty() {
            let tag_distinct = site.tag_thread_distinct.unwrap_or(false);
            let peer_distinct = site.peer_thread_distinct.unwrap_or(false);
            let hint = match site.name.as_str() {
                "mpi_recv" | "mpi_irecv" if !tag_distinct && !peer_distinct => {
                    Some("isConcurrentRecvViolation")
                }
                "mpi_probe" | "mpi_iprobe" if !tag_distinct && !peer_distinct => {
                    Some("isProbeViolation")
                }
                _ if site.is_collective => Some("isCollectiveCallViolation"),
                _ => None,
            };
            if let Some(hint) = hint {
                out.push(StaticCandidate {
                    kind: CandidateKind::UnprotectedMonitoredWrite,
                    line: site.line,
                    site: site.name.clone(),
                    description: format!(
                        "{} from multiple threads with no lock held and no \
                         thread-distinct envelope",
                        site.name
                    ),
                    violation_hint: Some(hint.to_string()),
                });
            }
        }
    }

    // Pass 1b: lock-order inversion anywhere in the program.
    let pairs = lock_order_pairs(program, summaries);
    let mut seen = BTreeSet::new();
    for (a, b, line) in &pairs {
        if a == b {
            continue;
        }
        let inverse = pairs.iter().find(|(x, y, _)| x == b && y == a);
        if let Some((_, _, line2)) = inverse {
            let key = if a < b {
                (a.clone(), b.clone())
            } else {
                (b.clone(), a.clone())
            };
            if seen.insert(key) {
                out.push(StaticCandidate {
                    kind: CandidateKind::PotentialDeadlock,
                    line: *line.min(line2),
                    site: format!("critical({a})/critical({b})"),
                    description: format!(
                        "lock-order inversion: critical({a}) is entered while holding \
                         critical({b}) and vice versa (lines {line} and {line2})",
                    ),
                    violation_hint: None,
                });
            }
        }
    }

    out.sort_by(|x, y| (x.line, &x.site).cmp(&(y.line, &y.site)));
    out
}

/// Ordered lock pairs `(held, acquired, line)`: somewhere, `acquired` is
/// entered while `held` is held — intraprocedurally (nested criticals, with
/// the body owner's entry locks as base) and interprocedurally (a call made
/// under locks into a function that may acquire more).
fn lock_order_pairs(program: &Program, summaries: &Summaries) -> Vec<(String, String, u32)> {
    let mut pairs = Vec::new();
    let mut base: Vec<String> = Vec::new();
    nested_pairs(&program.body, &mut base, &mut pairs);
    for func in &program.functions {
        let mut base: Vec<String> = summaries.entry_locks(&func.name).iter().cloned().collect();
        nested_pairs(&func.body, &mut base, &mut pairs);
    }
    for edge in &summaries.graph.edges {
        if let Some(callee) = summaries.get(&edge.callee) {
            for held in summaries.edge_locks(edge) {
                for acquired in &callee.locks_acquired {
                    pairs.push((held.clone(), acquired.clone(), edge.line));
                }
            }
        }
    }
    pairs
}

fn nested_pairs(stmts: &[Stmt], held: &mut Vec<String>, pairs: &mut Vec<(String, String, u32)>) {
    for s in stmts {
        if let StmtKind::OmpCritical { name, body } = &s.kind {
            for h in held.iter() {
                pairs.push((h.clone(), name.clone(), s.line));
            }
            held.push(name.clone());
            nested_pairs(body, held, pairs);
            held.pop();
        } else {
            for b in s.kind.blocks() {
                nested_pairs(b, held, pairs);
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::analyze;
    use home_ir::parse;

    fn candidates_of(src: &str) -> Vec<StaticCandidate> {
        analyze(&parse(src).unwrap()).candidates
    }

    #[test]
    fn blocking_recv_under_interprocedural_lock_is_a_deadlock_candidate() {
        let cs = candidates_of(
            r#"
            program dl {
                fn fetch() { mpi_recv(from: 0, tag: 4); }
                fn relay() { call fetch(); }
                mpi_init_thread(multiple);
                omp parallel num_threads(2) {
                    omp critical(net) { call relay(); }
                }
                mpi_finalize();
            }
            "#,
        );
        let dl = cs
            .iter()
            .find(|c| c.kind == CandidateKind::PotentialDeadlock)
            .expect("deadlock candidate");
        assert_eq!(dl.site, "mpi_recv");
        assert!(
            dl.description.contains("critical(net)"),
            "{}",
            dl.description
        );
        assert!(dl.violation_hint.is_none());
    }

    #[test]
    fn unprotected_recv_and_collective_are_flagged_with_hints() {
        let cs = candidates_of(
            r#"
            program up {
                mpi_init_thread(multiple);
                omp parallel num_threads(2) {
                    mpi_recv(from: 0, tag: 7);
                    mpi_barrier();
                }
                mpi_finalize();
            }
            "#,
        );
        let hints: Vec<&str> = cs
            .iter()
            .filter_map(|c| c.violation_hint.as_deref())
            .collect();
        assert!(hints.contains(&"isConcurrentRecvViolation"), "{cs:?}");
        assert!(hints.contains(&"isCollectiveCallViolation"), "{cs:?}");
        assert!(cs
            .iter()
            .all(|c| c.kind == CandidateKind::UnprotectedMonitoredWrite));
    }

    #[test]
    fn thread_distinct_envelope_and_serialized_sites_are_clean() {
        let cs = candidates_of(
            r#"
            program clean {
                mpi_init_thread(multiple);
                omp parallel num_threads(2) {
                    mpi_recv(from: 0, tag: tid);
                    omp master { mpi_barrier(); }
                }
                mpi_finalize();
            }
            "#,
        );
        assert!(cs.is_empty(), "{cs:?}");
    }

    #[test]
    fn lock_order_inversion_is_one_deduplicated_candidate() {
        let cs = candidates_of(
            r#"
            program abba {
                omp parallel num_threads(2) {
                    omp critical(a) { omp critical(b) { compute(1); } }
                    omp critical(b) { omp critical(a) { compute(1); } }
                }
            }
            "#,
        );
        let dl: Vec<&StaticCandidate> = cs
            .iter()
            .filter(|c| c.kind == CandidateKind::PotentialDeadlock)
            .collect();
        assert_eq!(dl.len(), 1, "{cs:?}");
        assert!(dl[0].site.contains("critical(a)"));
        assert!(dl[0].site.contains("critical(b)"));
    }

    #[test]
    fn interprocedural_lock_order_inversion_is_found() {
        let cs = candidates_of(
            r#"
            program iabba {
                fn takes_b() { omp critical(b) { compute(1); } }
                fn takes_a() { omp critical(a) { compute(1); } }
                omp parallel num_threads(2) {
                    omp critical(a) { call takes_b(); }
                    omp critical(b) { call takes_a(); }
                }
            }
            "#,
        );
        assert!(
            cs.iter()
                .any(|c| c.kind == CandidateKind::PotentialDeadlock && c.site.contains("critical")),
            "{cs:?}"
        );
    }
}
