//! Side-by-side run of HOME, Marmot, and ITC on one program exhibiting all
//! three of the paper's differentiators: a real violation, a latent race
//! only predictive analysis finds, and a benign critical-section pattern
//! only a critical-blind tool flags.
//!
//! ```text
//! cargo run --example compare_tools
//! ```

use home::prelude::*;

const PROGRAM: &str = r#"
program compare {
    mpi_init_thread(multiple);

    // (a) Manifest violation: both threads of rank 1 receive with tag 5.
    if (rank == 0) {
        mpi_send(to: 1, tag: 5, count: 1);
        mpi_send(to: 1, tag: 5, count: 1);
    }
    if (rank == 1) {
        omp parallel num_threads(2) {
            mpi_recv(from: 0, tag: 5);
        }
    }

    // (b) Latent race: thread 1's receive comes long after thread 0's in
    // every realistic schedule, but nothing synchronizes them.
    if (rank == 0) {
        mpi_send(to: 1, tag: 6, count: 1);
        mpi_send(to: 1, tag: 6, count: 1);
    }
    if (rank == 1) {
        omp parallel num_threads(2) {
            if (tid == 0) {
                mpi_recv(from: 0, tag: 6);
                mpi_send(to: 0, tag: 60, count: 1);
            }
            if (tid == 1) {
                compute(500000000);
                mpi_recv(from: 0, tag: 6);
            }
        }
    }
    if (rank == 0) { mpi_recv(from: 1, tag: 60); }

    // (c) Benign: receives serialized under omp critical — safe.
    if (rank == 0) {
        mpi_send(to: 1, tag: 7, count: 1);
        mpi_send(to: 1, tag: 7, count: 1);
    }
    if (rank == 1) {
        omp parallel num_threads(2) {
            omp critical(safe_recv) {
                mpi_recv(from: 0, tag: 7);
            }
        }
    }

    mpi_finalize();
}
"#;

fn main() {
    let program = parse(PROGRAM).expect("valid DSL");
    let options = CheckOptions {
        sched_policy: SchedPolicy::EarliestClockFirst,
        ..CheckOptions::default()
    };

    println!(
        "{:<8} {:>17} {:>14} {:>16}",
        "tool", "recv violations", "latent found", "benign flagged"
    );
    for tool in [Tool::Home, Tool::Marmot, Tool::Itc] {
        let report = run_tool(tool, &program, &options);
        let recvs = report.of_kind(ViolationKind::ConcurrentRecv);
        let has_line = |line: u32| {
            recvs
                .iter()
                .any(|v| v.locations.iter().any(|l| l.line == line))
        };
        // Lines of the three receive groups in the source above.
        let manifest = has_line(12);
        let latent = has_line(25) || has_line(30);
        let benign = has_line(44) || has_line(45);
        println!(
            "{:<8} {:>17} {:>14} {:>16}",
            tool.label(),
            manifest,
            latent,
            benign
        );

        match tool {
            Tool::Home => {
                assert!(
                    manifest && latent && !benign,
                    "HOME: predictive, lock-aware"
                );
            }
            Tool::Marmot => {
                assert!(manifest && !latent && !benign, "Marmot: manifest-only");
            }
            Tool::Itc => {
                assert!(
                    manifest && latent && benign,
                    "ITC: predictive but critical-blind"
                );
            }
            Tool::Base => unreachable!(),
        }
    }
    println!("\nExactly the paper's comparison: HOME = predictive + lock-aware;");
    println!("Marmot misses latent races; ITC adds a false positive on critical sections.");
}
