//! The `home serve` daemon: a Unix-domain-socket collector accepting many
//! concurrent HBT trace streams.
//!
//! ## Protocol
//!
//! Each connection is one request. The first byte decides its shape:
//!
//! * `0x89` (the HBT magic) — the connection is an HBT stream. The client
//!   writes the whole trace, half-closes its write side, and reads back a
//!   single JSON line with the per-submission verdict. One
//!   [`SectionSession`] runs per recorded section, fed record-at-a-time.
//! * anything else — an ASCII command line (`STATUS`, `PING`,
//!   `SHUTDOWN`), answered with a single JSON line.
//!
//! ## Trust model
//!
//! Everything after `accept()` is attacker-controlled bytes. The HBT
//! readers bound every length-prefixed allocation, a read timeout bounds
//! how long a stalled client can hold a session slot, and the session gate
//! bounds how many ingest sessions hold detector state at once — a
//! hostile client can cost one slot and one timeout, never memory or the
//! daemon's life. Malformed streams produce a typed JSON error reply; the
//! daemon never panics on input.

use crate::analyze::{violation_identity, ViolationIdentity};
use crate::protocol::{error_reply, status_reply, submit_reply};
use home_core::{EmitOrder, Violation};
use home_stream::HBT_MAGIC;
use home_trace::HomeError;
use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Unix-domain socket path to listen on.
    pub socket: PathBuf,
    /// Maximum concurrent ingest sessions; further connections are
    /// accepted but block on the gate until a slot frees (bounded-memory
    /// backpressure).
    pub max_sessions: usize,
    /// Per-read timeout on ingest connections: a stalled client forfeits
    /// its slot with a typed error instead of holding it forever.
    pub read_timeout: Option<Duration>,
    /// Overall wall-clock deadline for one ingest session. The per-read
    /// timeout alone is not enough: a client trickling one byte per
    /// `read_timeout - ε` would hold a gate slot forever. Past the
    /// deadline the next read fails with a typed error and the slot is
    /// released.
    pub session_deadline: Option<Duration>,
}

impl ServeConfig {
    /// Defaults: 64 concurrent sessions, 30-second read timeout,
    /// 300-second session deadline.
    pub fn new(socket: impl Into<PathBuf>) -> ServeConfig {
        ServeConfig {
            socket: socket.into(),
            max_sessions: 64,
            read_timeout: Some(Duration::from_secs(30)),
            session_deadline: Some(Duration::from_secs(300)),
        }
    }
}

/// One violation aggregated across every run the daemon has ingested.
#[derive(Debug, Clone)]
pub struct AggViolation {
    /// The violation (first instance seen).
    pub violation: Violation,
    /// Number of runs (sections) it appeared in.
    pub runs: u64,
    /// Minimum canonical emission position across those runs.
    pub order: EmitOrder,
}

/// Cross-run aggregate over everything the daemon has ingested.
#[derive(Debug, Default)]
pub struct Fleet {
    /// Connections that delivered a well-formed trace.
    pub submissions: u64,
    /// Connections rejected with a typed trace error.
    pub rejected: u64,
    /// Recorded sections (runs) ingested.
    pub runs: u64,
    /// Events ingested.
    pub events: u64,
    /// Monitored races found.
    pub races: u64,
    /// Races the rules could not classify.
    pub unclassified: u64,
    violations: BTreeMap<ViolationIdentity, AggViolation>,
}

impl Fleet {
    fn absorb(&mut self, outcome: &crate::analyze::TraceOutcome) {
        self.submissions += 1;
        self.runs += outcome.sections.len() as u64;
        self.events += outcome.events;
        self.races += outcome.races as u64;
        self.unclassified += outcome.unclassified as u64;
        for verdict in &outcome.sections {
            for kv in &verdict.violations {
                let key = violation_identity(&kv.violation);
                match self.violations.get_mut(&key) {
                    Some(agg) => {
                        agg.runs += 1;
                        if kv.order < agg.order {
                            agg.order = kv.order;
                        }
                    }
                    None => {
                        self.violations.insert(
                            key,
                            AggViolation {
                                violation: kv.violation.clone(),
                                runs: 1,
                                order: kv.order,
                            },
                        );
                    }
                }
            }
        }
    }

    /// Aggregated violations sorted by canonical emission position (ties
    /// broken by identity, which the backing map already orders).
    pub fn violations(&self) -> Vec<AggViolation> {
        let mut all: Vec<AggViolation> = self.violations.values().cloned().collect();
        all.sort_by(|a, b| {
            a.order.cmp(&b.order).then_with(|| {
                violation_identity(&a.violation).cmp(&violation_identity(&b.violation))
            })
        });
        all
    }
}

/// Counting gate bounding concurrent ingest sessions.
#[derive(Debug)]
struct Gate {
    max: usize,
    active: Mutex<usize>,
    freed: Condvar,
}

impl Gate {
    fn lock(&self) -> std::sync::MutexGuard<'_, usize> {
        self.active
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn acquire(&self) {
        let mut active = self.lock();
        while *active >= self.max {
            active = self
                .freed
                .wait(active)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        *active += 1;
    }

    fn release(&self) {
        *self.lock() -= 1;
        self.freed.notify_one();
    }

    fn active(&self) -> usize {
        *self.lock()
    }
}

#[derive(Debug)]
struct State {
    socket: PathBuf,
    read_timeout: Option<Duration>,
    session_deadline: Option<Duration>,
    shutdown: AtomicBool,
    gate: Gate,
    fleet: Mutex<Fleet>,
}

impl State {
    fn fleet(&self) -> std::sync::MutexGuard<'_, Fleet> {
        self.fleet
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// The listening daemon. [`Server::bind`] claims the socket;
/// [`Server::run`] accepts until a `SHUTDOWN` command arrives.
#[derive(Debug)]
pub struct Server {
    listener: UnixListener,
    state: Arc<State>,
}

impl Server {
    /// Bind the socket. A leftover socket file from a dead daemon (nothing
    /// accepts on it) is removed and rebound; a live daemon on the same
    /// path is an `AddrInUse` error.
    pub fn bind(config: ServeConfig) -> io::Result<Server> {
        let listener = match UnixListener::bind(&config.socket) {
            Ok(l) => l,
            Err(e) if e.kind() == io::ErrorKind::AddrInUse => {
                if UnixStream::connect(&config.socket).is_ok() {
                    return Err(io::Error::new(
                        io::ErrorKind::AddrInUse,
                        format!("a daemon is already serving on {}", config.socket.display()),
                    ));
                }
                std::fs::remove_file(&config.socket)?;
                UnixListener::bind(&config.socket)?
            }
            Err(e) => return Err(e),
        };
        Ok(Server {
            listener,
            state: Arc::new(State {
                socket: config.socket,
                read_timeout: config.read_timeout,
                session_deadline: config.session_deadline,
                shutdown: AtomicBool::new(false),
                gate: Gate {
                    max: config.max_sessions.max(1),
                    active: Mutex::new(0),
                    freed: Condvar::new(),
                },
                fleet: Mutex::new(Fleet::default()),
            }),
        })
    }

    /// The socket path this server listens on.
    pub fn socket_path(&self) -> &Path {
        &self.state.socket
    }

    /// Accept and serve connections until a `SHUTDOWN` command arrives.
    /// Outstanding ingest sessions are drained before returning; the
    /// socket file is removed on the way out.
    pub fn run(self) -> io::Result<()> {
        let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        for conn in self.listener.incoming() {
            if self.state.shutdown.load(Ordering::Acquire) {
                break;
            }
            let stream = match conn {
                Ok(s) => s,
                Err(_) => continue,
            };
            handlers.retain(|h| !h.is_finished());
            let state = Arc::clone(&self.state);
            handlers.push(std::thread::spawn(move || handle(stream, &state)));
        }
        for h in handlers {
            let _ = h.join();
        }
        let _ = std::fs::remove_file(&self.state.socket);
        Ok(())
    }
}

/// Serve one connection. Reply write failures are ignored (the client is
/// gone); the fleet aggregate is updated regardless.
fn handle(mut stream: UnixStream, state: &State) {
    let _ = stream.set_read_timeout(state.read_timeout);
    let mut first = [0u8; 1];
    let reply = match stream.read_exact(&mut first) {
        Err(_) => return,
        Ok(()) if first[0] == HBT_MAGIC[0] => {
            // HBT ingest: hold a session slot for the stream's lifetime.
            state.gate.acquire();
            let result = ingest(first[0], &mut stream, state);
            state.gate.release();
            match result {
                Ok(reply) => reply,
                Err(e) => {
                    state.fleet().rejected += 1;
                    error_reply(&e.to_string())
                }
            }
        }
        Ok(()) => command(first[0], &mut stream, state),
    };
    let _ = stream.write_all(reply.as_bytes());
    let _ = stream.write_all(b"\n");
    let _ = stream.flush();
}

/// Re-arms the socket read timeout before every read so an overall
/// session deadline holds on top of the per-read timeout: each read waits
/// at most `min(read_timeout, remaining-until-deadline)`, and once the
/// deadline passes the next read fails with `TimedOut` instead of letting
/// a trickling client start another full timeout window.
struct DeadlineReader<'a> {
    stream: &'a UnixStream,
    per_read: Option<Duration>,
    deadline: Option<Instant>,
}

impl<'a> DeadlineReader<'a> {
    fn new(stream: &'a UnixStream, per_read: Option<Duration>, session: Option<Duration>) -> Self {
        DeadlineReader {
            stream,
            per_read,
            deadline: session.map(|d| Instant::now() + d),
        }
    }
}

impl Read for DeadlineReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let timeout = match self.deadline {
            Some(deadline) => {
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "session deadline exceeded",
                    ));
                }
                match self.per_read {
                    Some(per) => Some(per.min(remaining)),
                    None => Some(remaining),
                }
            }
            None => self.per_read,
        };
        let _ = self.stream.set_read_timeout(timeout);
        match self.stream.read(buf) {
            // A blocking-timeout failure on the deadline-shortened window is
            // the deadline itself expiring; name it so the client's error
            // says why the session was cut, not just that a read timed out.
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) && self.deadline.is_some_and(|d| Instant::now() >= d) =>
            {
                Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "session deadline exceeded",
                ))
            }
            other => other,
        }
    }
}

/// Ingest one HBT stream record-at-a-time via the shared
/// [`analyze_stream`](crate::analyze::analyze_stream) loop, under the
/// session deadline, and fold the verdict into the fleet aggregate.
fn ingest(first: u8, stream: &mut UnixStream, state: &State) -> Result<String, HomeError> {
    let prefix = io::Cursor::new([first]);
    let deadline = DeadlineReader::new(stream, state.read_timeout, state.session_deadline);
    let outcome = crate::analyze::analyze_stream(prefix.chain(deadline))?;
    let mut fleet = state.fleet();
    fleet.absorb(&outcome);
    drop(fleet);
    Ok(submit_reply(&outcome))
}

/// Serve one ASCII command line (the first byte was already consumed).
fn command(first: u8, stream: &mut UnixStream, state: &State) -> String {
    let mut line = vec![first];
    let mut byte = [0u8; 1];
    while line.len() < 256 && !line.ends_with(b"\n") {
        match stream.read_exact(&mut byte) {
            Ok(()) => line.push(byte[0]),
            Err(_) => break,
        }
    }
    let cmd = String::from_utf8_lossy(&line).trim().to_ascii_uppercase();
    match cmd.as_str() {
        "PING" => r#"{"ok":true}"#.to_string(),
        "STATUS" => {
            let fleet = state.fleet();
            status_reply(&fleet, state.gate.active())
        }
        "SHUTDOWN" => {
            state.shutdown.store(true, Ordering::Release);
            // Wake the blocking accept with a throwaway connection so the
            // loop observes the flag.
            let _ = UnixStream::connect(&state.socket);
            r#"{"ok":true,"stopping":true}"#.to_string()
        }
        other => error_reply(&format!(
            "unknown command `{other}` (expected PING, STATUS, or SHUTDOWN)"
        )),
    }
}
