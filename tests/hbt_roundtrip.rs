//! Property tests of the HBT binary trace format: lossless round-trips
//! through JSON and back, and typed (never panicking) errors when the byte
//! stream is truncated at any position. Uses the seeded in-repo ChaCha
//! generator; every case is deterministic and the failing seed is part of
//! the assertion message.

use home::stream::{
    decode_sections, encode_trace, is_hbt, HbtMmapReader, HbtWriter, TraceIncident,
};
use home::trace::{
    AccessKind, BarrierId, CommId, Event, EventKind, LockId, MemLoc, MonitoredVar, MpiCallKind,
    MpiCallRecord, Rank, RegionId, ReqId, SrcLoc, ThreadLevel, Tid, Trace, VarId,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn rng_for(case: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(0x4B71_0000 + case)
}

const ALL_CALL_KINDS: [MpiCallKind; 24] = [
    MpiCallKind::Init,
    MpiCallKind::InitThread,
    MpiCallKind::Finalize,
    MpiCallKind::Send,
    MpiCallKind::Ssend,
    MpiCallKind::Recv,
    MpiCallKind::Isend,
    MpiCallKind::Irecv,
    MpiCallKind::Sendrecv,
    MpiCallKind::Wait,
    MpiCallKind::Test,
    MpiCallKind::Waitall,
    MpiCallKind::Probe,
    MpiCallKind::Iprobe,
    MpiCallKind::Barrier,
    MpiCallKind::Bcast,
    MpiCallKind::Reduce,
    MpiCallKind::Allreduce,
    MpiCallKind::Gather,
    MpiCallKind::Scatter,
    MpiCallKind::Allgather,
    MpiCallKind::Alltoall,
    MpiCallKind::CommDup,
    MpiCallKind::CommSplit,
];

const ALL_LEVELS: [ThreadLevel; 4] = [
    ThreadLevel::Single,
    ThreadLevel::Funneled,
    ThreadLevel::Serialized,
    ThreadLevel::Multiple,
];

const ALL_VARS: [MonitoredVar; 6] = [
    MonitoredVar::Src,
    MonitoredVar::Tag,
    MonitoredVar::Comm,
    MonitoredVar::Request,
    MonitoredVar::Collective,
    MonitoredVar::Finalize,
];

fn gen_call(rng: &mut ChaCha8Rng) -> MpiCallRecord {
    MpiCallRecord {
        kind: ALL_CALL_KINDS[rng.gen_range(0..ALL_CALL_KINDS.len())],
        peer: rng
            .gen_bool(0.5)
            .then(|| rng.gen_range(0i64..40) as i32 - 1),
        tag: rng
            .gen_bool(0.5)
            .then(|| rng.gen_range(0i64..2000) as i32 - 1),
        comm: CommId(rng.gen_range(0u64..4) as u32),
        request: rng.gen_bool(0.3).then(|| ReqId(rng.gen_range(0u64..1000))),
        is_main_thread: rng.gen_bool(0.5),
        thread_level: rng.gen_bool(0.7).then(|| ALL_LEVELS[rng.gen_range(0..4)]),
    }
}

fn gen_memloc(rng: &mut ChaCha8Rng) -> MemLoc {
    match rng.gen_range(0u64..3) {
        0 => MemLoc::Monitored(ALL_VARS[rng.gen_range(0..6)]),
        1 => MemLoc::Var(VarId(rng.gen_range(0u64..64) as u32)),
        _ => MemLoc::Elem(
            VarId(rng.gen_range(0u64..64) as u32),
            rng.gen_range(0u64..1 << 40),
        ),
    }
}

fn gen_kind(rng: &mut ChaCha8Rng) -> EventKind {
    match rng.gen_range(0u64..9) {
        0 => EventKind::Access {
            loc: gen_memloc(rng),
            kind: if rng.gen_bool(0.5) {
                AccessKind::Read
            } else {
                AccessKind::Write
            },
        },
        1 => EventKind::MonitoredWrite {
            var: ALL_VARS[rng.gen_range(0..6)],
            call: gen_call(rng),
        },
        2 => EventKind::Acquire {
            lock: LockId(rng.gen_range(0u64..32) as u32),
        },
        3 => EventKind::Release {
            lock: LockId(rng.gen_range(0u64..32) as u32),
        },
        4 => EventKind::Fork {
            region: RegionId(rng.gen_range(0u64..1 << 50)),
            nthreads: rng.gen_range(0u64..64) as u32,
        },
        5 => EventKind::JoinRegion {
            region: RegionId(rng.gen_range(0u64..1 << 50)),
        },
        6 => EventKind::Barrier {
            barrier: BarrierId(rng.gen_range(0u64..16) as u32),
            epoch: rng.gen_range(0u64..1 << 40),
        },
        7 => EventKind::MpiCall {
            call: gen_call(rng),
        },
        _ => EventKind::MpiInit {
            level: ALL_LEVELS[rng.gen_range(0..4)],
            requested_by_init_thread: rng.gen_bool(0.5),
        },
    }
}

fn gen_event(rng: &mut ChaCha8Rng, seq: u64) -> Event {
    Event {
        seq,
        rank: Rank(rng.gen_range(0u64..8) as u32),
        tid: Tid(rng.gen_range(0u64..8) as u32),
        region: rng
            .gen_bool(0.6)
            .then(|| RegionId(rng.gen_range(0u64..1 << 50))),
        time_ns: rng.gen_range(0u64..u64::MAX / 2),
        loc: rng.gen_bool(0.5).then(|| SrcLoc {
            file: format!("prog_{}.hmp", rng.gen_range(0u64..4)),
            line: rng.gen_range(0u64..5000) as u32,
        }),
        kind: gen_kind(rng),
    }
}

fn gen_trace(rng: &mut ChaCha8Rng) -> Trace {
    let n = rng.gen_range(0u64..60) as usize;
    Trace::from_events((0..n as u64).map(|seq| gen_event(rng, seq)).collect())
}

/// HBT → JSON → HBT is lossless: both binary images are identical, and both
/// decode to the same events.
#[test]
fn hbt_json_hbt_roundtrip_is_lossless() {
    for case in 0..64 {
        let mut rng = rng_for(case);
        let trace = gen_trace(&mut rng);
        let hbt = encode_trace(&trace);
        assert!(is_hbt(&hbt), "case {case}");

        // HBT → trace → JSON → trace → HBT.
        let sections = decode_sections(&hbt).unwrap_or_else(|e| panic!("case {case}: {e}"));
        assert_eq!(sections.len(), 1, "case {case}");
        let json = sections[0].trace.to_json();
        let back = Trace::from_json(&json).unwrap_or_else(|e| panic!("case {case}: {e}"));
        assert_eq!(
            back.events(),
            trace.events(),
            "case {case}: JSON round-trip must preserve every event"
        );
        let hbt2 = encode_trace(&back);
        assert_eq!(hbt, hbt2, "case {case}: binary image must be stable");
    }
}

/// Incidents and per-run seeds survive the round-trip too.
#[test]
fn sections_with_seeds_and_incidents_roundtrip() {
    for case in 0..16 {
        let mut rng = rng_for(0x1000 + case);
        let mut buf = Vec::new();
        let mut writer = HbtWriter::new(&mut buf).unwrap();
        let mut expect = Vec::new();
        for run in 0..rng.gen_range(1u64..4) {
            let seed = rng.gen_range(0u64..1 << 60);
            writer.begin_run(seed).unwrap();
            let trace = gen_trace(&mut rng);
            for e in trace.events() {
                writer.write_event(e).unwrap();
            }
            let incidents: Vec<TraceIncident> = (0..rng.gen_range(0u64..3))
                .map(|i| TraceIncident {
                    rank: rng.gen_range(0u64..8) as u32,
                    line: rng.gen_range(0u64..500) as u32,
                    call: format!("MPI_Call_{run}_{i}"),
                    error: "send to out-of-range rank".to_string(),
                })
                .collect();
            for inc in &incidents {
                writer.write_incident(inc).unwrap();
            }
            expect.push((seed, trace, incidents));
        }
        writer.finish().unwrap();

        let sections = decode_sections(&buf).unwrap_or_else(|e| panic!("case {case}: {e}"));
        assert_eq!(sections.len(), expect.len(), "case {case}");
        for (section, (seed, trace, incidents)) in sections.iter().zip(&expect) {
            assert_eq!(section.seed, Some(*seed), "case {case}");
            assert_eq!(section.trace.events(), trace.events(), "case {case}");
            assert_eq!(&section.incidents, incidents, "case {case}");
        }
    }
}

/// Truncating the byte stream at ANY offset yields a typed parse/corruption
/// error (or, before the header completes, a typed header error) — never a
/// panic, and never a silent success.
#[test]
fn truncation_at_every_byte_is_a_typed_error() {
    let mut rng = rng_for(0x2000);
    let mut trace = gen_trace(&mut rng);
    while trace.is_empty() {
        trace = gen_trace(&mut rng);
    }
    let hbt = encode_trace(&trace);
    for cut in 0..hbt.len() {
        match decode_sections(&hbt[..cut]) {
            Err(e) => {
                let cat = e.category();
                assert!(
                    cat == "trace-parse" || cat == "corrupt-trace",
                    "cut {cut}: unexpected category {cat}: {e}"
                );
            }
            Ok(_) => panic!("cut {cut}: truncated stream decoded successfully"),
        }
    }
    // The full image still decodes.
    assert!(decode_sections(&hbt).is_ok());
}

/// The zero-copy mmap reader decodes a file-backed trace to exactly the
/// same sections as the buffered in-memory decoder, and exposes the exact
/// on-disk bytes.
#[test]
fn mmap_reader_matches_buffered_decode_on_random_traces() {
    let dir = std::env::temp_dir().join(format!("home_hbt_mmap_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap_or_else(|e| panic!("create temp dir: {e}"));
    for case in 0..32 {
        let mut rng = rng_for(0x5000 + case);
        let trace = gen_trace(&mut rng);
        let hbt = encode_trace(&trace);
        let path = dir.join(format!("case_{case}.hbt"));
        std::fs::write(&path, &hbt).unwrap_or_else(|e| panic!("case {case}: write: {e}"));

        let reader =
            HbtMmapReader::open(&path).unwrap_or_else(|e| panic!("case {case}: open: {e}"));
        assert_eq!(
            reader.bytes(),
            &hbt[..],
            "case {case}: bytes must be identical"
        );
        let mapped = reader
            .sections()
            .unwrap_or_else(|e| panic!("case {case}: mmap decode: {e}"));
        let buffered = decode_sections(&hbt).unwrap_or_else(|e| panic!("case {case}: {e}"));
        assert_eq!(mapped.len(), buffered.len(), "case {case}");
        for (m, b) in mapped.iter().zip(&buffered) {
            assert_eq!(m.seed, b.seed, "case {case}");
            assert_eq!(m.trace.events(), b.trace.events(), "case {case}");
            assert_eq!(m.incidents, b.incidents, "case {case}");
        }
        let _ = std::fs::remove_file(&path);
    }
    let _ = std::fs::remove_dir(&dir);
}

/// Flipping the version byte or magic is a typed error with a clear message.
#[test]
fn corrupt_header_is_a_typed_error() {
    let trace = gen_trace(&mut rng_for(0x3000));
    let mut bad_version = encode_trace(&trace);
    bad_version[4] = 0x7f;
    let err = decode_sections(&bad_version).unwrap_err();
    assert!(err.to_string().contains("version"), "{err}");

    let mut bad_magic = encode_trace(&trace);
    bad_magic[0] = b'X';
    assert!(!is_hbt(&bad_magic));
    assert!(decode_sections(&bad_magic).is_err());
}
