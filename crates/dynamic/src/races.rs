//! Race report types.

use home_trace::{AccessKind, MemLoc, MpiCallRecord, Rank, RegionId, SrcLoc, Tid};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One side of a detected race.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RaceAccess {
    /// Trace sequence number of the access event.
    pub seq: u64,
    /// OpenMP thread.
    pub tid: Tid,
    /// Parallel region instance (`None` = sequential part).
    pub region: Option<RegionId>,
    /// Read or write.
    pub kind: AccessKind,
    /// Source location, when the event carried one.
    pub loc: Option<SrcLoc>,
    /// The MPI call behind a monitored-variable write, when applicable.
    pub mpi: Option<MpiCallRecord>,
}

impl fmt::Display for RaceAccess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?} by {}{}",
            self.kind,
            self.tid,
            match &self.loc {
                Some(l) => format!(" at {l}"),
                None => String::new(),
            }
        )?;
        if let Some(call) = &self.mpi {
            write!(f, " in {call}")?;
        }
        Ok(())
    }
}

/// A detected concurrency conflict on one memory location within one MPI
/// process: two accesses by different threads, at least one a write, with
/// no happens-before order and no common lock (depending on the detector
/// mode).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Race {
    /// The MPI process.
    pub rank: Rank,
    /// The racing location.
    pub loc: MemLoc,
    /// Earlier access (by trace sequence).
    pub first: RaceAccess,
    /// Later access.
    pub second: RaceAccess,
}

impl Race {
    /// True if both sides carry MPI call records (i.e. the race is on a
    /// monitored variable, connecting two MPI calls).
    pub fn is_monitored(&self) -> bool {
        self.first.mpi.is_some() && self.second.mpi.is_some()
    }

    /// The two MPI call records behind a monitored race, or `None` when
    /// either side lacks one (such a race cannot be matched against the
    /// MPI-metadata rules).
    pub fn mpi_pair(&self) -> Option<(&MpiCallRecord, &MpiCallRecord)> {
        match (&self.first.mpi, &self.second.mpi) {
            (Some(a), Some(b)) => Some((a, b)),
            _ => None,
        }
    }
}

impl fmt::Display for Race {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "race on {} in {}: [{}] vs [{}]",
            self.loc, self.rank, self.first, self.second
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use home_trace::{MonitoredVar, MpiCallKind};

    fn access(seq: u64, tid: u32, mpi: bool) -> RaceAccess {
        RaceAccess {
            seq,
            tid: Tid(tid),
            region: Some(RegionId(0)),
            kind: AccessKind::Write,
            loc: Some(SrcLoc::new("x.hmp", 3)),
            mpi: mpi.then(|| MpiCallRecord::of_kind(MpiCallKind::Recv)),
        }
    }

    #[test]
    fn monitored_race_requires_both_sides() {
        let r = Race {
            rank: Rank(0),
            loc: MemLoc::Monitored(MonitoredVar::Tag),
            first: access(1, 0, true),
            second: access(2, 1, true),
        };
        assert!(r.is_monitored());
        let r2 = Race {
            first: access(1, 0, false),
            ..r.clone()
        };
        assert!(!r2.is_monitored());
    }

    #[test]
    fn display_mentions_location_and_threads() {
        let r = Race {
            rank: Rank(1),
            loc: MemLoc::Monitored(MonitoredVar::Tag),
            first: access(1, 0, true),
            second: access(2, 1, true),
        };
        let s = r.to_string();
        assert!(s.contains("tagtmp"));
        assert!(s.contains("rank1"));
        assert!(s.contains("tid0"));
        assert!(s.contains("tid1"));
        assert!(s.contains("MPI_Recv"));
        assert!(s.contains("x.hmp:3"));
    }
}
