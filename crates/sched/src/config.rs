//! Scheduler configuration.

use crate::policy::SchedPolicy;

/// How virtual threads are allowed to make progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedMode {
    /// No gating: virtual threads run with real OS concurrency. Virtual
    /// clocks and deadlock *tokens* are still maintained, but whole-system
    /// deadlock detection is unavailable (an idle system cannot be
    /// distinguished from a blocked one without gating).
    Free,
    /// Exactly one virtual thread runs at a time; the interleaving is chosen
    /// by the configured [`SchedPolicy`]. Fully reproducible for a fixed
    /// seed, and able to detect whole-system deadlocks.
    Deterministic,
}

/// Configuration for a [`crate::Runtime`].
#[derive(Debug, Clone)]
pub struct SchedConfig {
    /// Execution mode.
    pub mode: SchedMode,
    /// Scheduling policy used at yield points (deterministic mode only).
    pub policy: SchedPolicy,
    /// Seed for the policy's RNG (deterministic mode, random policy).
    pub seed: u64,
    /// Upper bound on scheduling decisions before the run is aborted, as a
    /// guard against livelock in buggy simulated programs. `None` = no bound.
    pub max_steps: Option<u64>,
    /// [`SchedPolicy::Priority`] only: the scheduling-step range
    /// `[1, pct_horizon]` the priority-change points are drawn from. PCT
    /// wants this near the program's step count; the default covers the
    /// bundled corpus with room to spare.
    pub pct_horizon: u64,
    /// [`SchedPolicy::Priority`] only: exact thread-name → priority
    /// overrides, applied at spawn before any random draw. Unpinned threads
    /// draw from `[PRIORITY_BASE_MIN, PRIORITY_BASE_MAX]`; pin above that
    /// range to force a thread to the front, below zero to starve it.
    /// Directed rescheduling uses one high and one low pin to flip the
    /// order of two racing accesses.
    pub priority_pins: Vec<(String, i64)>,
}

/// Smallest priority an unpinned thread can draw under
/// [`SchedPolicy::Priority`]. Change-point demotions use values `<= 0`, so
/// every demoted thread ranks below every undemoted one.
pub const PRIORITY_BASE_MIN: i64 = 1_000;

/// Largest priority an unpinned thread can draw under
/// [`SchedPolicy::Priority`]. Pins above this always run first.
pub const PRIORITY_BASE_MAX: i64 = 1_000_000;

impl SchedConfig {
    /// Deterministic mode with seeded random interleaving — the default for
    /// tests and for the paper-reproduction harness.
    pub fn deterministic(seed: u64) -> Self {
        SchedConfig {
            mode: SchedMode::Deterministic,
            policy: SchedPolicy::Random,
            seed,
            max_steps: Some(50_000_000),
            pct_horizon: 1024,
            priority_pins: Vec::new(),
        }
    }

    /// Deterministic mode that always runs the runnable thread with the
    /// smallest virtual clock. This makes the interleaving *time-faithful*:
    /// the simulated makespan approximates what a real parallel execution of
    /// the same costs would produce. Used by the figure-regeneration benches.
    pub fn time_faithful(seed: u64) -> Self {
        SchedConfig {
            policy: SchedPolicy::EarliestClockFirst,
            ..SchedConfig::deterministic(seed)
        }
    }

    /// Free mode: real OS concurrency.
    pub fn free() -> Self {
        SchedConfig {
            mode: SchedMode::Free,
            policy: SchedPolicy::RoundRobin,
            seed: 0,
            max_steps: None,
            pct_horizon: 1024,
            priority_pins: Vec::new(),
        }
    }

    /// Replace the scheduling policy.
    pub fn with_policy(mut self, policy: SchedPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Replace the step bound.
    pub fn with_max_steps(mut self, max_steps: Option<u64>) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Replace the priority pins (see [`SchedConfig::priority_pins`]).
    pub fn with_priority_pins(mut self, pins: Vec<(String, i64)>) -> Self {
        self.priority_pins = pins;
        self
    }

    /// Replace the change-point horizon (see [`SchedConfig::pct_horizon`]).
    pub fn with_pct_horizon(mut self, horizon: u64) -> Self {
        self.pct_horizon = horizon.max(1);
        self
    }
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig::deterministic(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let d = SchedConfig::deterministic(9);
        assert_eq!(d.mode, SchedMode::Deterministic);
        assert_eq!(d.seed, 9);
        assert_eq!(d.policy, SchedPolicy::Random);

        let t = SchedConfig::time_faithful(1);
        assert_eq!(t.policy, SchedPolicy::EarliestClockFirst);

        let f = SchedConfig::free();
        assert_eq!(f.mode, SchedMode::Free);
        assert_eq!(f.max_steps, None);
    }

    #[test]
    fn builders() {
        let c = SchedConfig::deterministic(0)
            .with_policy(SchedPolicy::RoundRobin)
            .with_max_steps(Some(10));
        assert_eq!(c.policy, SchedPolicy::RoundRobin);
        assert_eq!(c.max_steps, Some(10));
    }
}
