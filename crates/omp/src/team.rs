//! Shared state of one parallel-region team: barrier, worksharing
//! constructs, and reductions.

use home_sched::{current_vtid, BlockReason, Runtime, SchedResult, Vtid};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::ops::Range;
use std::sync::Arc;

#[derive(Debug, Default)]
struct BarrierState {
    arrived: usize,
    epoch: u64,
    waiters: Vec<Vtid>,
}

/// Per-construct shared state (worksharing/single/reduction bookkeeping),
/// keyed by the construct occurrence index. SPMD semantics: every thread of
/// the team encounters the constructs in the same order, so a per-thread
/// counter indexes into this map consistently.
#[derive(Debug, Default)]
struct ConstructState {
    /// `single`: whether some thread already claimed execution.
    single_claimed: bool,
    /// `sections` / dynamic `for`: next unclaimed index.
    next_index: u64,
    /// reduction accumulator.
    red_acc: Option<f64>,
    /// reduction contributions so far.
    red_count: usize,
}

/// State shared by the threads of one parallel region.
#[derive(Clone)]
pub struct Team {
    rt: Runtime,
    nthreads: usize,
    label: String,
    barrier: Arc<Mutex<BarrierState>>,
    constructs: Arc<Mutex<HashMap<u64, ConstructState>>>,
}

impl Team {
    /// Create the shared state for a team of `nthreads`.
    pub fn new(rt: Runtime, nthreads: usize, label: impl Into<String>) -> Self {
        Team {
            rt,
            nthreads,
            label: label.into(),
            barrier: Arc::new(Mutex::new(BarrierState::default())),
            constructs: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// Team size.
    pub fn nthreads(&self) -> usize {
        self.nthreads
    }

    /// Barrier epoch counter (how many full barrier rounds completed).
    pub fn barrier_epoch(&self) -> u64 {
        self.barrier.lock().epoch
    }

    /// Wait until all `nthreads` team members arrive. Returns the barrier
    /// epoch that was completed (for trace events).
    pub fn barrier_wait(&self) -> SchedResult<u64> {
        let me = current_vtid().expect("barrier_wait outside a virtual thread");
        let my_epoch;
        {
            let mut b = self.barrier.lock();
            my_epoch = b.epoch;
            b.arrived += 1;
            if b.arrived == self.nthreads {
                b.arrived = 0;
                b.epoch += 1;
                let waiters = std::mem::take(&mut b.waiters);
                drop(b);
                for w in waiters {
                    self.rt.unblock(w);
                }
                return Ok(my_epoch);
            }
        }
        loop {
            {
                let mut b = self.barrier.lock();
                if b.epoch > my_epoch {
                    return Ok(my_epoch);
                }
                if !b.waiters.contains(&me) {
                    b.waiters.push(me);
                }
            }
            self.rt
                .block_current(BlockReason::Barrier(self.label.clone()))?;
        }
    }

    /// `single` claim: true for exactly one thread per construct occurrence.
    pub fn claim_single(&self, construct: u64) -> bool {
        let mut cs = self.constructs.lock();
        let st = cs.entry(construct).or_default();
        if st.single_claimed {
            false
        } else {
            st.single_claimed = true;
            true
        }
    }

    /// Claim the next index of a `sections`/dynamic-`for` construct;
    /// `None` once `limit` is exhausted.
    pub fn claim_index(&self, construct: u64, limit: u64) -> Option<u64> {
        let mut cs = self.constructs.lock();
        let st = cs.entry(construct).or_default();
        if st.next_index >= limit {
            None
        } else {
            let ix = st.next_index;
            st.next_index += 1;
            Some(ix)
        }
    }

    /// Claim the next chunk `[lo, hi)` of a dynamic `for` over `0..total`.
    pub fn claim_chunk(&self, construct: u64, total: u64, chunk: u64) -> Option<Range<u64>> {
        debug_assert!(chunk > 0);
        let mut cs = self.constructs.lock();
        let st = cs.entry(construct).or_default();
        if st.next_index >= total {
            None
        } else {
            let lo = st.next_index;
            let hi = (lo + chunk).min(total);
            st.next_index = hi;
            Some(lo..hi)
        }
    }

    /// Contribute `value` to a reduction at `construct`; the combined result
    /// is available to everyone after the following team barrier.
    pub fn reduce_contribute(&self, construct: u64, value: f64, op: impl Fn(f64, f64) -> f64) {
        let mut cs = self.constructs.lock();
        let st = cs.entry(construct).or_default();
        st.red_acc = Some(match st.red_acc {
            None => value,
            Some(acc) => op(acc, value),
        });
        st.red_count += 1;
    }

    /// Read a completed reduction's result (call after the barrier).
    pub fn reduce_result(&self, construct: u64) -> f64 {
        let cs = self.constructs.lock();
        let st = cs.get(&construct).expect("reduction state must exist");
        debug_assert_eq!(st.red_count, self.nthreads, "reduction incomplete");
        st.red_acc.expect("reduction must have contributions")
    }
}

impl std::fmt::Debug for Team {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Team")
            .field("nthreads", &self.nthreads)
            .field("label", &self.label)
            .finish()
    }
}

/// Block distribution of `0..n` over `nthreads`, returning `tid`'s range —
/// the static `for` schedule.
pub fn static_range(n: u64, nthreads: usize, tid: usize) -> Range<u64> {
    let nthreads = nthreads as u64;
    let tid = tid as u64;
    let base = n / nthreads;
    let rem = n % nthreads;
    // The first `rem` threads take one extra element.
    let lo = tid * base + tid.min(rem);
    let len = base + u64::from(tid < rem);
    lo..(lo + len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use home_sched::SchedConfig;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    #[test]
    fn static_range_partitions_exactly() {
        for n in [0u64, 1, 7, 100] {
            for nt in [1usize, 2, 3, 8] {
                let mut covered = Vec::new();
                for t in 0..nt {
                    covered.extend(static_range(n, nt, t));
                }
                covered.sort_unstable();
                assert_eq!(covered, (0..n).collect::<Vec<_>>(), "n={n} nt={nt}");
                // Balance: sizes differ by at most 1.
                let sizes: Vec<u64> = (0..nt)
                    .map(|t| {
                        let r = static_range(n, nt, t);
                        r.end - r.start
                    })
                    .collect();
                let min = *sizes.iter().min().unwrap();
                let max = *sizes.iter().max().unwrap();
                assert!(max - min <= 1);
            }
        }
    }

    #[test]
    fn barrier_synchronizes_team() {
        let rt = Runtime::new(SchedConfig::deterministic(3));
        let team = Team::new(rt.clone(), 3, "test");
        let phase = Arc::new(AtomicUsize::new(0));
        for i in 0..3 {
            let team = team.clone();
            let phase = Arc::clone(&phase);
            let rt2 = rt.clone();
            rt.spawn(format!("t{i}"), move || {
                phase.fetch_add(1, Ordering::SeqCst);
                for _ in 0..i {
                    rt2.yield_now().unwrap();
                }
                team.barrier_wait().unwrap();
                // After the barrier everyone must observe all 3 arrivals.
                assert_eq!(phase.load(Ordering::SeqCst), 3);
            });
        }
        rt.run().unwrap();
        assert_eq!(team.barrier_epoch(), 1);
    }

    #[test]
    fn barrier_is_reusable_across_epochs() {
        let rt = Runtime::new(SchedConfig::deterministic(4));
        let team = Team::new(rt.clone(), 2, "test");
        for i in 0..2 {
            let team = team.clone();
            rt.spawn(format!("t{i}"), move || {
                for round in 0..5u64 {
                    let epoch = team.barrier_wait().unwrap();
                    assert_eq!(epoch, round);
                }
            });
        }
        rt.run().unwrap();
        assert_eq!(team.barrier_epoch(), 5);
    }

    #[test]
    fn single_claim_exactly_one() {
        let rt = Runtime::new(SchedConfig::deterministic(5));
        let team = Team::new(rt.clone(), 4, "test");
        let claims = Arc::new(AtomicUsize::new(0));
        for i in 0..4 {
            let team = team.clone();
            let claims = Arc::clone(&claims);
            rt.spawn(format!("t{i}"), move || {
                if team.claim_single(0) {
                    claims.fetch_add(1, Ordering::SeqCst);
                }
                // Second construct occurrence gets a fresh claim.
                if team.claim_single(1) {
                    claims.fetch_add(1, Ordering::SeqCst);
                }
            });
        }
        rt.run().unwrap();
        assert_eq!(claims.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn claim_index_hands_out_each_once() {
        let rt = Runtime::new(SchedConfig::deterministic(6));
        let team = Team::new(rt.clone(), 3, "test");
        let sum = Arc::new(AtomicU64::new(0));
        let count = Arc::new(AtomicU64::new(0));
        for i in 0..3 {
            let team = team.clone();
            let sum = Arc::clone(&sum);
            let count = Arc::clone(&count);
            rt.spawn(format!("t{i}"), move || {
                while let Some(ix) = team.claim_index(0, 10) {
                    sum.fetch_add(ix, Ordering::SeqCst);
                    count.fetch_add(1, Ordering::SeqCst);
                }
            });
        }
        rt.run().unwrap();
        assert_eq!(count.load(Ordering::SeqCst), 10);
        assert_eq!(sum.load(Ordering::SeqCst), 45);
    }

    #[test]
    fn claim_chunk_covers_range() {
        let rt = Runtime::new(SchedConfig::deterministic(7));
        let team = Team::new(rt.clone(), 2, "test");
        let covered = Arc::new(Mutex::new(Vec::new()));
        for i in 0..2 {
            let team = team.clone();
            let covered = Arc::clone(&covered);
            rt.spawn(format!("t{i}"), move || {
                while let Some(r) = team.claim_chunk(0, 23, 4) {
                    covered.lock().extend(r);
                }
            });
        }
        rt.run().unwrap();
        let mut c = covered.lock().clone();
        c.sort_unstable();
        assert_eq!(c, (0..23).collect::<Vec<_>>());
    }

    #[test]
    fn reduction_combines_all_contributions() {
        let rt = Runtime::new(SchedConfig::deterministic(8));
        let team = Team::new(rt.clone(), 3, "test");
        for i in 0..3 {
            let team = team.clone();
            rt.spawn(format!("t{i}"), move || {
                team.reduce_contribute(0, (i + 1) as f64, |a, b| a + b);
                team.barrier_wait().unwrap();
                assert_eq!(team.reduce_result(0), 6.0);
            });
        }
        rt.run().unwrap();
    }
}
