//! The Marmot baseline model.
//!
//! Per the paper (Section V-B): Marmot performs purely dynamic checking
//! through a central debug process — it "can only detect violations if they
//! actually appear in a run made with MARMOT". It has no lockset or
//! happens-before prediction, so a racy pair whose calls happen to
//! serialize in the observed schedule is missed (the paper's false
//! negatives), and every MPI call pays a round-trip to the manager (its
//! overhead profile).

use home_dynamic::{Race, RaceAccess};
use home_trace::{Event, EventKind, MemLoc, Tid, Trace};
use std::collections::HashSet;

/// One wrapped MPI call as observed in the trace: the `MpiCall` entry event
/// plus its contiguous monitored writes (the wrapper emits them without a
/// scheduling point, so within a rank they are adjacent).
struct CallBlock<'a> {
    tid: Tid,
    /// Rank-local index of the first event of the block.
    start: usize,
    /// Rank-local index one past the last event of the block.
    end: usize,
    /// The monitored writes of this call.
    writes: Vec<(MemLoc, &'a Event)>,
}

/// Find *manifest* concurrency on monitored variables: two MPI calls from
/// different threads of one process whose executions visibly overlapped in
/// the observed schedule.
///
/// Overlap proxy: call B's wrapper block begins after call A's block and
/// before the next event thread A emitted *after* its block — i.e. B
/// entered MPI while A had not yet moved past its (typically blocking)
/// call. If thread A emitted nothing further, its call is treated as
/// extending to the end of the trace.
pub fn manifest_races(trace: &Trace) -> Vec<Race> {
    let mut races = Vec::new();
    for &rank in trace.ranks() {
        let events: Vec<&Event> = trace.by_rank(rank).collect();
        let calls = call_blocks(&events);
        // First event index of `tid` at or after `pos`.
        let next_event_of = |tid: Tid, pos: usize| -> usize {
            events
                .iter()
                .enumerate()
                .skip(pos)
                .find(|(_, e)| e.tid == tid)
                .map(|(i, _)| i)
                .unwrap_or(usize::MAX)
        };
        // Dedupe per (variable, call-site pair, thread pair): repeated
        // executions of the same racy pair report once, but distinct racy
        // call sites each report.
        // A region's JoinRegion event bounds every call made inside it:
        // after the join, the region's threads are gone.
        let join_of = |region: home_trace::RegionId| -> usize {
            events
                .iter()
                .enumerate()
                .find(|(_, e)| matches!(e.kind, EventKind::JoinRegion { region: r } if r == region))
                .map(|(i, _)| i)
                .unwrap_or(usize::MAX)
        };
        let mut seen: HashSet<(MemLoc, u32, u32, Tid, Tid)> = HashSet::new();
        for a in &calls {
            // A's call is "still running" until its next own event, and in
            // no case past the end of its region.
            let mut a_busy_until = next_event_of(a.tid, a.end);
            if a.start < events.len() {
                if let Some(region) = events[a.start].region {
                    a_busy_until = a_busy_until.min(join_of(region));
                }
            }
            for b in &calls {
                if b.tid == a.tid || b.start <= a.start {
                    continue;
                }
                if b.start >= a_busy_until {
                    continue; // A had already moved on — no observed overlap.
                }
                for (loc_a, ev_a) in &a.writes {
                    for (loc_b, ev_b) in &b.writes {
                        if loc_a != loc_b {
                            continue;
                        }
                        let line = |e: &Event| e.loc.as_ref().map(|l| l.line).unwrap_or(0);
                        let (la, lb) = (line(ev_a), line(ev_b));
                        let key = (
                            *loc_a,
                            la.min(lb),
                            la.max(lb),
                            a.tid.min(b.tid),
                            a.tid.max(b.tid),
                        );
                        if !seen.insert(key) {
                            continue;
                        }
                        let (Some(first), Some(second)) = (access_of(ev_a), access_of(ev_b)) else {
                            continue; // not an access event: nothing to report
                        };
                        races.push(Race {
                            rank,
                            loc: *loc_a,
                            first,
                            second,
                        });
                    }
                }
            }
        }
    }
    races
}

/// Group a rank's events into wrapper call blocks.
fn call_blocks<'a>(events: &[&'a Event]) -> Vec<CallBlock<'a>> {
    let mut blocks: Vec<CallBlock<'a>> = Vec::new();
    let mut i = 0;
    while i < events.len() {
        let e = events[i];
        let is_call_start = matches!(e.kind, EventKind::MpiCall { .. })
            || matches!(e.kind, EventKind::MonitoredWrite { .. });
        if !is_call_start {
            i += 1;
            continue;
        }
        let tid = e.tid;
        let start = i;
        let mut writes = Vec::new();
        // Consume the MpiCall entry (if present) and following monitored
        // writes from the same thread.
        while i < events.len() && events[i].tid == tid {
            match &events[i].kind {
                EventKind::MpiCall { .. } if i == start => {}
                EventKind::MonitoredWrite { .. } => match events[i].kind.access() {
                    Some((loc, _)) => writes.push((loc, events[i])),
                    // A monitored write always carries an access; tolerate
                    // a malformed event by ending the block instead of
                    // panicking.
                    None => break,
                },
                _ => break,
            }
            i += 1;
        }
        blocks.push(CallBlock {
            tid,
            start,
            end: i,
            writes,
        });
    }
    blocks
}

fn access_of(e: &Event) -> Option<RaceAccess> {
    let (_, kind) = e.kind.access()?;
    Some(RaceAccess {
        seq: e.seq,
        tid: e.tid,
        region: e.region,
        kind,
        loc: e.loc.clone(),
        mpi: e.kind.mpi_call().cloned(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use home_trace::{MonitoredVar, MpiCallKind, MpiCallRecord, Rank, RegionId, SrcLoc};

    fn ev_at(seq: u64, tid: u32, line: u32, kind: EventKind) -> Event {
        Event {
            seq,
            rank: Rank(0),
            tid: Tid(tid),
            region: Some(RegionId(0)),
            time_ns: seq,
            loc: Some(SrcLoc::new("m.hmp", line)),
            kind,
        }
    }

    fn ev(seq: u64, tid: u32, kind: EventKind) -> Event {
        ev_at(seq, tid, seq as u32, kind)
    }

    /// A wrapper block at a fixed call site: MpiCall entry + Src/Tag/Comm
    /// writes.
    fn call_at(seq: &mut u64, tid: u32, line: u32) -> Vec<Event> {
        let record = MpiCallRecord::of_kind(MpiCallKind::Recv);
        let mut out = vec![ev_at(
            *seq,
            tid,
            line,
            EventKind::MpiCall {
                call: record.clone(),
            },
        )];
        for var in [MonitoredVar::Src, MonitoredVar::Tag, MonitoredVar::Comm] {
            *seq += 1;
            out.push(ev_at(
                *seq,
                tid,
                line,
                EventKind::MonitoredWrite {
                    var,
                    call: record.clone(),
                },
            ));
        }
        *seq += 1;
        out
    }

    fn call(seq: &mut u64, tid: u32) -> Vec<Event> {
        call_at(seq, tid, 1)
    }

    fn barrier(seq: &mut u64, tid: u32) -> Event {
        let e = ev(
            *seq,
            tid,
            EventKind::Barrier {
                barrier: home_trace::BarrierId(0),
                epoch: 0,
            },
        );
        *seq += 1;
        e
    }

    #[test]
    fn interleaved_call_blocks_are_manifest() {
        let mut seq = 0;
        let mut events = call(&mut seq, 0);
        events.extend(call(&mut seq, 1)); // t1's block while t0 still blocked
        events.push(barrier(&mut seq, 0));
        let races = manifest_races(&Trace::from_events(events));
        // One race per monitored variable (src, tag, comm).
        assert_eq!(races.len(), 3);
        assert!(races
            .iter()
            .any(|r| r.loc == MemLoc::Monitored(MonitoredVar::Tag)));
    }

    #[test]
    fn serialized_call_blocks_are_missed() {
        let mut seq = 0;
        let mut events = call(&mut seq, 0);
        events.push(barrier(&mut seq, 0)); // t0 moved on before t1 started
        events.extend(call(&mut seq, 1));
        assert!(manifest_races(&Trace::from_events(events)).is_empty());
    }

    #[test]
    fn last_call_extends_to_trace_end() {
        let mut seq = 0;
        let mut events = call(&mut seq, 0);
        events.extend(call(&mut seq, 1));
        assert_eq!(manifest_races(&Trace::from_events(events)).len(), 3);
    }

    #[test]
    fn same_thread_calls_never_race() {
        let mut seq = 0;
        let mut events = call(&mut seq, 0);
        events.extend(call(&mut seq, 0));
        assert!(manifest_races(&Trace::from_events(events)).is_empty());
    }

    #[test]
    fn pairs_dedupe_per_location_and_threads() {
        let mut seq = 0;
        let mut events = call(&mut seq, 0);
        events.extend(call(&mut seq, 1));
        events.extend(call(&mut seq, 0));
        events.extend(call(&mut seq, 1));
        assert_eq!(manifest_races(&Trace::from_events(events)).len(), 3);
    }
}
