//! Offline shim for the `criterion` API subset used by the bench targets.
//!
//! Implements the same surface (`Criterion`, `benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Bencher::iter`,
//! `black_box`, `criterion_group!`, `criterion_main!`) over a simple
//! wall-clock sampler: each benchmark warms up, then takes `sample_size`
//! timed samples within roughly `measurement_time`, and prints
//! median / min / max per-iteration times. No statistics engine, no HTML
//! reports — enough to compare hot paths offline.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value passthrough.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Benchmark identifier: `function_id/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier combining a function name and a parameter rendering.
    pub fn new(function_id: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", function_id.into()),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Passed to the user's closure; `iter` runs and times the workload.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    config: SamplerConfig,
}

impl Bencher<'_> {
    /// Time `routine`, collecting the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget elapses at least once.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.config.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        let warm_elapsed = warm_start.elapsed();
        let per_iter = warm_elapsed
            .checked_div(warm_iters as u32)
            .unwrap_or_default();

        // Choose an inner iteration count so one sample is not noise-bound
        // but `sample_size` samples still fit the measurement budget.
        let budget_per_sample = self
            .config
            .measurement_time
            .checked_div(self.config.sample_size.max(1) as u32)
            .unwrap_or(Duration::from_millis(100));
        let inner = if per_iter.is_zero() {
            1_000
        } else {
            (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u32
        };

        for _ in 0..self.config.sample_size {
            let start = Instant::now();
            for _ in 0..inner {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples
                .push(elapsed.checked_div(inner).unwrap_or_default());
        }
    }
}

#[derive(Clone, Copy)]
struct SamplerConfig {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        SamplerConfig {
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
            sample_size: 10,
        }
    }
}

/// A named collection of related benchmarks sharing sampler settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    config: SamplerConfig,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the warm-up duration.
    pub fn warm_up_time(&mut self, duration: Duration) -> &mut Self {
        self.config.warm_up_time = duration;
        self
    }

    /// Set the total measurement budget.
    pub fn measurement_time(&mut self, duration: Duration) -> &mut Self {
        self.config.measurement_time = duration;
        self
    }

    /// Set the number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n;
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        run_sampled(&format!("{}/{}", self.name, id.into()), self.config, |b| {
            f(b)
        });
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        run_sampled(&format!("{}/{}", self.name, id.id), self.config, |b| {
            f(b, input)
        });
        self
    }

    /// Finish the group (prints nothing extra; samples print per-bench).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    config: SamplerConfig,
}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let config = self.config;
        BenchmarkGroup {
            name: name.into(),
            config,
            _criterion: self,
        }
    }

    /// Run one stand-alone named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        run_sampled(&id.into(), self.config, |b| f(b));
        self
    }
}

fn run_sampled(label: &str, config: SamplerConfig, mut f: impl FnMut(&mut Bencher<'_>)) {
    let mut samples = Vec::new();
    let mut bencher = Bencher {
        samples: &mut samples,
        config,
    };
    f(&mut bencher);
    samples.sort_unstable();
    if samples.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    let median = samples[samples.len() / 2];
    let min = samples[0];
    let max = samples[samples.len() - 1];
    println!(
        "{label:<48} median {:>12?}  min {:>12?}  max {:>12?}  ({} samples)",
        median,
        min,
        max,
        samples.len()
    );
}

/// Declare a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("shim");
        group
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
            .sample_size(3);
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("with_input", 4), &4u32, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
    }
}
