//! Collective-operation rendezvous machinery.
//!
//! Each communicator carries an ordered sequence of *collective slots*.
//! Every process keeps a per-communicator call counter; its k-th collective
//! call on that communicator joins slot k. When all members have arrived at
//! a slot, the result is computed and everyone proceeds. If two threads of
//! one process call collectives concurrently, their calls claim consecutive
//! slots in a schedule-dependent order — exactly the corruption the paper's
//! collective-call violation describes (slots then mismatch across ranks,
//! surfacing as [`crate::MpiError::CollectiveMismatch`] or a deadlock).

use crate::error::{MpiError, MpiResult};
use crate::msg::Payload;
use home_sched::Vtid;
use home_trace::MpiCallKind;
use std::collections::HashMap;
use std::sync::Arc;

/// Reduction operator for `MPI_Reduce`/`MPI_Allreduce`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceOp {
    Sum,
    Prod,
    Min,
    Max,
}

impl ReduceOp {
    /// Combine two values.
    pub fn combine(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Prod => a * b,
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
        }
    }

    /// Elementwise fold of `src` into `acc`.
    pub fn fold(self, acc: &mut [f64], src: &[f64]) {
        for (a, &s) in acc.iter_mut().zip(src) {
            *a = self.combine(*a, s);
        }
    }
}

/// What one participant contributed to a slot.
#[derive(Debug, Clone)]
pub struct Contribution {
    /// Payload (empty for barriers).
    pub data: Payload,
    /// `(color, key)` for `MPI_Comm_split`.
    pub color_key: Option<(i32, i32)>,
    /// Virtual time of arrival.
    pub arrived_at_ns: u64,
}

/// Result of a completed slot, as seen by one participant.
#[derive(Debug, Clone, Default)]
pub struct SlotResult {
    /// Per-member output payload (indexed by communicator rank). Operations
    /// whose result is identical for everyone store it at every index.
    pub per_rank: Vec<Payload>,
    /// Virtual completion time (all participants merge to this).
    pub complete_at_ns: u64,
    /// For `MPI_Comm_split`/`MPI_Comm_dup`: the new communicator per member.
    pub new_comm: Vec<Option<home_trace::CommId>>,
}

/// One collective slot.
#[derive(Debug)]
pub struct Slot {
    /// Operation kind fixed by the first arrival.
    pub kind: MpiCallKind,
    /// Reduction op (reduce/allreduce slots).
    pub op: Option<ReduceOp>,
    /// Root rank (bcast/reduce/gather/scatter), communicator-relative.
    pub root: Option<u32>,
    /// Contributions by communicator rank.
    pub contributions: HashMap<u32, Contribution>,
    /// Threads blocked waiting for the slot to complete.
    pub waiters: Vec<Vtid>,
    /// Set once all members have arrived.
    pub result: Option<SlotResult>,
    /// Set when the slot is poisoned (mismatched operations or payloads);
    /// every participant then observes this error.
    pub failed: Option<MpiError>,
}

impl Slot {
    /// Create a slot for the given operation.
    pub fn new(kind: MpiCallKind, op: Option<ReduceOp>, root: Option<u32>) -> Self {
        Slot {
            kind,
            op,
            root,
            contributions: HashMap::new(),
            waiters: Vec::new(),
            result: None,
            failed: None,
        }
    }

    /// Check that a late arrival agrees with the slot's operation.
    pub fn check_match(
        &self,
        kind: MpiCallKind,
        op: Option<ReduceOp>,
        root: Option<u32>,
    ) -> MpiResult<()> {
        if self.kind != kind {
            return Err(MpiError::CollectiveMismatch {
                expected: self.kind,
                got: kind,
            });
        }
        if self.op != op || self.root != root {
            return Err(MpiError::CollectiveMismatch {
                expected: self.kind,
                got: kind,
            });
        }
        Ok(())
    }

    /// Compute the slot result once all `size` members have contributed.
    /// `extra_ns` is the per-participant collective overhead.
    pub fn compute(&mut self, size: usize, extra_ns: u64) -> MpiResult<&SlotResult> {
        debug_assert_eq!(self.contributions.len(), size);
        let complete_at_ns = self
            .contributions
            .values()
            .map(|c| c.arrived_at_ns)
            .max()
            .unwrap_or(0)
            + extra_ns;
        let empty: Payload = Arc::new(Vec::new());
        let data_of = |r: u32| -> Payload {
            self.contributions
                .get(&r)
                .map(|c| Arc::clone(&c.data))
                .unwrap_or_else(|| Arc::clone(&empty))
        };
        let per_rank: Vec<Payload> = match self.kind {
            MpiCallKind::Barrier | MpiCallKind::Finalize => {
                vec![Arc::clone(&empty); size]
            }
            MpiCallKind::Bcast => {
                let root = self.root.expect("bcast needs root");
                vec![data_of(root); size]
            }
            MpiCallKind::Reduce | MpiCallKind::Allreduce => {
                let op = self.op.expect("reduction needs an op");
                let base = data_of(0);
                let mut acc: Vec<f64> = base.as_ref().clone();
                for r in 1..size as u32 {
                    let d = data_of(r);
                    if d.len() != acc.len() {
                        return Err(MpiError::PayloadMismatch {
                            expected: acc.len(),
                            got: d.len(),
                        });
                    }
                    op.fold(&mut acc, &d);
                }
                let combined: Payload = Arc::new(acc);
                match self.kind {
                    MpiCallKind::Allreduce => vec![Arc::clone(&combined); size],
                    _ => {
                        let root = self.root.expect("reduce needs root");
                        let mut v = vec![Arc::clone(&empty); size];
                        v[root as usize] = combined;
                        v
                    }
                }
            }
            MpiCallKind::Gather | MpiCallKind::Allgather => {
                let mut concat = Vec::new();
                for r in 0..size as u32 {
                    concat.extend_from_slice(&data_of(r));
                }
                let concat: Payload = Arc::new(concat);
                match self.kind {
                    MpiCallKind::Allgather => vec![Arc::clone(&concat); size],
                    _ => {
                        let root = self.root.expect("gather needs root");
                        let mut v = vec![Arc::clone(&empty); size];
                        v[root as usize] = concat;
                        v
                    }
                }
            }
            MpiCallKind::Scatter => {
                let root = self.root.expect("scatter needs root");
                let src = data_of(root);
                if src.len() % size != 0 {
                    return Err(MpiError::PayloadMismatch {
                        expected: size,
                        got: src.len(),
                    });
                }
                let chunk = src.len() / size;
                (0..size)
                    .map(|r| Arc::new(src[r * chunk..(r + 1) * chunk].to_vec()) as Payload)
                    .collect()
            }
            MpiCallKind::Alltoall => {
                // Each contribution is `size` equal chunks; receiver i gets
                // the concatenation of everyone's chunk i.
                let mut chunks: Vec<Vec<f64>> = Vec::with_capacity(size);
                let first = data_of(0);
                if first.len() % size != 0 {
                    return Err(MpiError::PayloadMismatch {
                        expected: size,
                        got: first.len(),
                    });
                }
                let chunk = first.len() / size;
                for i in 0..size {
                    let mut out = Vec::with_capacity(chunk * size);
                    for r in 0..size as u32 {
                        let d = data_of(r);
                        if d.len() != chunk * size {
                            return Err(MpiError::PayloadMismatch {
                                expected: chunk * size,
                                got: d.len(),
                            });
                        }
                        out.extend_from_slice(&d[i * chunk..(i + 1) * chunk]);
                    }
                    chunks.push(out);
                }
                chunks.into_iter().map(|c| Arc::new(c) as Payload).collect()
            }
            MpiCallKind::CommDup | MpiCallKind::CommSplit => {
                // Communicator creation carries no payload; `new_comm` is
                // filled in by the world (it owns the communicator table).
                vec![Arc::clone(&empty); size]
            }
            other => unreachable!("{other} is not a collective"),
        };
        self.result = Some(SlotResult {
            per_rank,
            complete_at_ns,
            new_comm: Vec::new(),
        });
        Ok(self.result.as_ref().unwrap())
    }
}

/// Per-communicator sequence of slots plus per-process call counters.
#[derive(Debug, Default)]
pub struct CollectiveSeq {
    /// Slots in program order.
    pub slots: Vec<Slot>,
    /// Next slot index per communicator rank.
    pub next_of_rank: HashMap<u32, usize>,
}

impl CollectiveSeq {
    /// Claim the next slot index for `crank`.
    pub fn claim(&mut self, crank: u32) -> usize {
        let e = self.next_of_rank.entry(crank).or_insert(0);
        let ix = *e;
        *e += 1;
        ix
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::payload;

    fn contribute(slot: &mut Slot, rank: u32, data: Vec<f64>) {
        slot.contributions.insert(
            rank,
            Contribution {
                data: payload(data),
                color_key: None,
                arrived_at_ns: rank as u64 * 10,
            },
        );
    }

    #[test]
    fn reduce_ops() {
        assert_eq!(ReduceOp::Sum.combine(2.0, 3.0), 5.0);
        assert_eq!(ReduceOp::Prod.combine(2.0, 3.0), 6.0);
        assert_eq!(ReduceOp::Min.combine(2.0, 3.0), 2.0);
        assert_eq!(ReduceOp::Max.combine(2.0, 3.0), 3.0);
        let mut acc = vec![1.0, 5.0];
        ReduceOp::Max.fold(&mut acc, &[3.0, 2.0]);
        assert_eq!(acc, vec![3.0, 5.0]);
    }

    #[test]
    fn barrier_completes_at_max_arrival() {
        let mut s = Slot::new(MpiCallKind::Barrier, None, None);
        contribute(&mut s, 0, vec![]);
        contribute(&mut s, 1, vec![]);
        contribute(&mut s, 2, vec![]);
        let r = s.compute(3, 7).unwrap();
        assert_eq!(r.complete_at_ns, 20 + 7);
    }

    #[test]
    fn allreduce_sums_elementwise() {
        let mut s = Slot::new(MpiCallKind::Allreduce, Some(ReduceOp::Sum), None);
        contribute(&mut s, 0, vec![1.0, 2.0]);
        contribute(&mut s, 1, vec![10.0, 20.0]);
        let r = s.compute(2, 0).unwrap();
        assert_eq!(*r.per_rank[0], vec![11.0, 22.0]);
        assert_eq!(*r.per_rank[1], vec![11.0, 22.0]);
    }

    #[test]
    fn reduce_only_root_gets_result() {
        let mut s = Slot::new(MpiCallKind::Reduce, Some(ReduceOp::Sum), Some(1));
        contribute(&mut s, 0, vec![1.0]);
        contribute(&mut s, 1, vec![2.0]);
        let r = s.compute(2, 0).unwrap();
        assert!(r.per_rank[0].is_empty());
        assert_eq!(*r.per_rank[1], vec![3.0]);
    }

    #[test]
    fn bcast_copies_root() {
        let mut s = Slot::new(MpiCallKind::Bcast, None, Some(0));
        contribute(&mut s, 0, vec![9.0]);
        contribute(&mut s, 1, vec![]);
        let r = s.compute(2, 0).unwrap();
        assert_eq!(*r.per_rank[1], vec![9.0]);
    }

    #[test]
    fn gather_concatenates_in_rank_order() {
        let mut s = Slot::new(MpiCallKind::Gather, None, Some(0));
        contribute(&mut s, 1, vec![2.0]);
        contribute(&mut s, 0, vec![1.0]);
        let r = s.compute(2, 0).unwrap();
        assert_eq!(*r.per_rank[0], vec![1.0, 2.0]);
        assert!(r.per_rank[1].is_empty());
    }

    #[test]
    fn scatter_slices() {
        let mut s = Slot::new(MpiCallKind::Scatter, None, Some(0));
        contribute(&mut s, 0, vec![1.0, 2.0, 3.0, 4.0]);
        contribute(&mut s, 1, vec![]);
        let r = s.compute(2, 0).unwrap();
        assert_eq!(*r.per_rank[0], vec![1.0, 2.0]);
        assert_eq!(*r.per_rank[1], vec![3.0, 4.0]);
    }

    #[test]
    fn alltoall_transposes() {
        let mut s = Slot::new(MpiCallKind::Alltoall, None, None);
        contribute(&mut s, 0, vec![1.0, 2.0]); // chunk0→rank0, chunk1→rank1
        contribute(&mut s, 1, vec![3.0, 4.0]);
        let r = s.compute(2, 0).unwrap();
        assert_eq!(*r.per_rank[0], vec![1.0, 3.0]);
        assert_eq!(*r.per_rank[1], vec![2.0, 4.0]);
    }

    #[test]
    fn mismatched_kind_is_detected() {
        let s = Slot::new(MpiCallKind::Barrier, None, None);
        let e = s
            .check_match(MpiCallKind::Bcast, None, Some(0))
            .unwrap_err();
        assert!(matches!(e, MpiError::CollectiveMismatch { .. }));
        assert!(s.check_match(MpiCallKind::Barrier, None, None).is_ok());
    }

    #[test]
    fn mismatched_lengths_fail_reduce() {
        let mut s = Slot::new(MpiCallKind::Allreduce, Some(ReduceOp::Sum), None);
        contribute(&mut s, 0, vec![1.0]);
        contribute(&mut s, 1, vec![1.0, 2.0]);
        assert!(matches!(
            s.compute(2, 0),
            Err(MpiError::PayloadMismatch { .. })
        ));
    }

    #[test]
    fn claim_is_per_rank_monotone() {
        let mut seq = CollectiveSeq::default();
        assert_eq!(seq.claim(0), 0);
        assert_eq!(seq.claim(0), 1);
        assert_eq!(seq.claim(1), 0);
        assert_eq!(seq.claim(1), 1);
    }
}
