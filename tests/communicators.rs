//! Communicator semantics through the DSL: `mpi_comm_dup`/`mpi_comm_split`
//! and the `comm:` argument — exercising the *other* differentiation axis
//! of the thread-safety rules (the paper: "we can prevent such data races
//! using distinct communicators or tags for each thread").

use home::prelude::*;

#[test]
fn comm_dup_and_split_work_through_the_dsl() {
    // Split world by rank parity, exchange within each half, reduce on the
    // duplicated world communicator.
    let src = r#"
        program comms {
            mpi_init_thread(multiple);
            mpi_comm_dup(into: world2);
            mpi_comm_split(color: rank % 2, key: rank, into: half);
            // Each half has 2 members (world size 4); exchange inside it.
            mpi_send(to: 1 - (rank / 2), tag: 3, count: 1, comm: half);
            mpi_recv(from: 1 - (rank / 2), tag: 3, comm: half);
            mpi_allreduce(sum, count: 1, comm: world2);
            mpi_barrier(comm: half);
            mpi_finalize();
        }
    "#;
    let report = check(
        &parse(src).unwrap(),
        &CheckOptions::new(4, 2).with_seeds(vec![1, 2]),
    );
    assert!(report.violations.is_empty(), "{}", report.render());
    assert!(report.deadlocks.is_empty());
    assert!(report.incidents.is_empty(), "{:?}", report.incidents);
}

#[test]
fn distinct_communicators_fix_concurrent_recv() {
    // The same-tag concurrent receives from Figure 2's family — but each
    // thread uses its own duplicated communicator, which differentiates the
    // messages. The paper's alternative fix. Must be clean.
    let src = r#"
        program comm_fix {
            mpi_init_thread(multiple);
            mpi_comm_dup(into: ca);
            mpi_comm_dup(into: cb);
            if (rank == 0) {
                mpi_send(to: 1, tag: 5, count: 1, comm: ca);
                mpi_send(to: 1, tag: 5, count: 1, comm: cb);
            }
            if (rank == 1) {
                omp parallel num_threads(2) {
                    if (tid == 0) { mpi_recv(from: 0, tag: 5, comm: ca); }
                    if (tid == 1) { mpi_recv(from: 0, tag: 5, comm: cb); }
                }
            }
            mpi_finalize();
        }
    "#;
    let report = check(&parse(src).unwrap(), &CheckOptions::default());
    assert!(
        !report.has(ViolationKind::ConcurrentRecv),
        "distinct communicators differentiate the envelopes: {}",
        report.render()
    );
    assert!(report.deadlocks.is_empty());
}

#[test]
fn same_communicator_still_violates() {
    // Control for the test above: same structure, single communicator.
    let src = r#"
        program comm_bad {
            mpi_init_thread(multiple);
            mpi_comm_dup(into: ca);
            if (rank == 0) {
                mpi_send(to: 1, tag: 5, count: 1, comm: ca);
                mpi_send(to: 1, tag: 5, count: 1, comm: ca);
            }
            if (rank == 1) {
                omp parallel num_threads(2) {
                    mpi_recv(from: 0, tag: 5, comm: ca);
                }
            }
            mpi_finalize();
        }
    "#;
    let report = check(&parse(src).unwrap(), &CheckOptions::default());
    assert!(
        report.has(ViolationKind::ConcurrentRecv),
        "{}",
        report.render()
    );
}

#[test]
fn concurrent_collectives_on_distinct_comms_are_legal() {
    // The MPI rule forbids concurrent collectives on ONE communicator;
    // per-thread communicators make it legal.
    let src = r#"
        program coll_ok {
            mpi_init_thread(multiple);
            mpi_comm_dup(into: ca);
            mpi_comm_dup(into: cb);
            omp parallel num_threads(2) {
                if (tid == 0) { mpi_barrier(comm: ca); }
                if (tid == 1) { mpi_barrier(comm: cb); }
            }
            mpi_finalize();
        }
    "#;
    let report = check(&parse(src).unwrap(), &CheckOptions::default());
    assert!(
        !report.has(ViolationKind::CollectiveCall),
        "distinct communicators make concurrent collectives legal: {}",
        report.render()
    );
    assert!(report.deadlocks.is_empty(), "{:?}", report.deadlocks);
}

#[test]
fn concurrent_collectives_on_one_dup_comm_still_violate() {
    let src = r#"
        program coll_bad {
            mpi_init_thread(multiple);
            mpi_comm_dup(into: ca);
            omp parallel num_threads(2) {
                mpi_barrier(comm: ca);
            }
            mpi_finalize();
        }
    "#;
    let report = check(&parse(src).unwrap(), &CheckOptions::default());
    assert!(
        report.has(ViolationKind::CollectiveCall),
        "{}",
        report.render()
    );
}

#[test]
fn unknown_communicator_is_an_incident_not_a_crash() {
    let src = r#"
        program unknown_comm {
            mpi_init_thread(multiple);
            mpi_barrier(comm: nosuch);
            mpi_finalize();
        }
    "#;
    let report = check(&parse(src).unwrap(), &CheckOptions::default());
    assert!(report
        .incidents
        .iter()
        .any(|i| i.error.contains("unknown communicator")));
    assert!(report.deadlocks.is_empty());
}

#[test]
fn split_subgroup_collective_does_not_block_world() {
    // Only the even half barriers on its sub-communicator; the odd half
    // proceeds — no deadlock, no violation.
    let src = r#"
        program split_coll {
            mpi_init_thread(multiple);
            mpi_comm_split(color: rank % 2, key: rank, into: half);
            if (rank % 2 == 0) {
                mpi_allreduce(max, count: 2, comm: half);
            }
            mpi_finalize();
        }
    "#;
    let report = check(
        &parse(src).unwrap(),
        &CheckOptions::new(4, 2).with_seeds(vec![3]),
    );
    assert!(report.violations.is_empty(), "{}", report.render());
    assert!(report.deadlocks.is_empty());
}

#[test]
fn comm_calls_print_and_reparse() {
    let src = r#"
        program roundtrip {
            mpi_init_thread(multiple);
            mpi_comm_dup(into: c);
            mpi_comm_split(color: rank % 2, key: rank, into: h);
            mpi_send(to: 0, tag: 1, count: 2, comm: c);
            mpi_recv(from: any, tag: any, comm: h);
            mpi_probe(from: 0, tag: 1, comm: c);
            mpi_allreduce(sum, count: 1, comm: h);
            mpi_finalize();
        }
    "#;
    let p1 = parse(src).unwrap();
    let printed = print_program(&p1);
    let p2 = parse(&printed).unwrap();
    assert_eq!(p1.stmt_count(), p2.stmt_count());
    assert_eq!(printed, print_program(&p2), "canonical print is a fixpoint");
}
