//! Trace sinks and the collector handle used by the simulators.

use crate::event::{Event, EventKind};
use crate::ids::{LockId, Rank, RegionId, SrcLoc, Tid, VarId};
use crate::intern::Interner;
use crate::trace::Trace;
use crossbeam::queue::SegQueue;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Where recorded events go.
pub trait TraceSink: Send + Sync {
    /// Record one event. Must be cheap and safe to call from any thread.
    fn record(&self, event: Event);
}

/// Discards everything (baseline runs without any tool attached).
#[derive(Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&self, _event: Event) {}
}

/// Keeps every event in a lock-free queue; drained into a [`Trace`] at the
/// end of the run.
#[derive(Debug, Default)]
pub struct MemorySink {
    queue: SegQueue<Event>,
}

impl MemorySink {
    /// Create an empty in-memory sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// Drain all recorded events into a [`Trace`] (sorted by sequence).
    /// One lock acquisition and one buffer move, not a pop (and lock) per
    /// element.
    pub fn drain(&self) -> Trace {
        let mut events: Vec<Event> = self.queue.take_all().into();
        events.sort_by_key(|e| e.seq);
        Trace::from_events(events)
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True if no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

impl TraceSink for MemorySink {
    fn record(&self, event: Event) {
        self.queue.push(event);
    }
}

/// Counts events per class without storing them — used by the overhead
/// benchmarks, where event *volume* matters but content does not.
#[derive(Debug, Default)]
pub struct CountingSink {
    /// Plain shared-variable accesses.
    pub accesses: AtomicU64,
    /// Monitored-variable writes from MPI wrappers.
    pub monitored: AtomicU64,
    /// Lock/fork/join/barrier events.
    pub sync: AtomicU64,
    /// MPI call entries.
    pub mpi: AtomicU64,
}

impl CountingSink {
    /// Create a zeroed counting sink.
    pub fn new() -> Self {
        CountingSink::default()
    }

    /// Total events seen.
    pub fn total(&self) -> u64 {
        self.accesses.load(Ordering::Relaxed)
            + self.monitored.load(Ordering::Relaxed)
            + self.sync.load(Ordering::Relaxed)
            + self.mpi.load(Ordering::Relaxed)
    }
}

impl TraceSink for CountingSink {
    fn record(&self, event: Event) {
        let ctr = match &event.kind {
            EventKind::Access { .. } => &self.accesses,
            EventKind::MonitoredWrite { .. } => &self.monitored,
            EventKind::Acquire { .. }
            | EventKind::Release { .. }
            | EventKind::Fork { .. }
            | EventKind::JoinRegion { .. }
            | EventKind::Barrier { .. } => &self.sync,
            EventKind::MpiCall { .. } | EventKind::MpiInit { .. } => &self.mpi,
        };
        ctr.fetch_add(1, Ordering::Relaxed);
    }
}

/// Which event classes a tool wants recorded.
///
/// This is the knob that distinguishes the tools in the paper:
/// * **base** records nothing,
/// * **HOME** records monitored writes + sync + MPI calls, but only from
///   call sites the static analysis selected (site filtering happens in the
///   interpreter; class filtering here),
/// * **ITC** records *every* shared access as well,
/// * **Marmot** records MPI calls and monitored writes only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventFilter {
    /// Record plain shared-variable accesses.
    pub accesses: bool,
    /// Record monitored-variable writes.
    pub monitored: bool,
    /// Record synchronization events (locks, fork/join, barriers).
    pub sync: bool,
    /// Record MPI call entries.
    pub mpi_calls: bool,
}

impl EventFilter {
    /// Record everything.
    pub const ALL: EventFilter = EventFilter {
        accesses: true,
        monitored: true,
        sync: true,
        mpi_calls: true,
    };

    /// Record nothing.
    pub const NONE: EventFilter = EventFilter {
        accesses: false,
        monitored: false,
        sync: false,
        mpi_calls: false,
    };

    /// HOME's selection: monitored variables, synchronization, MPI calls —
    /// but not plain data accesses.
    pub const MONITORED_AND_SYNC: EventFilter = EventFilter {
        accesses: false,
        monitored: true,
        sync: true,
        mpi_calls: true,
    };

    /// Does this filter admit `kind`?
    pub fn admits(&self, kind: &EventKind) -> bool {
        match kind {
            EventKind::Access { .. } => self.accesses,
            EventKind::MonitoredWrite { .. } => self.monitored,
            EventKind::Acquire { .. }
            | EventKind::Release { .. }
            | EventKind::Fork { .. }
            | EventKind::JoinRegion { .. }
            | EventKind::Barrier { .. } => self.sync,
            EventKind::MpiCall { .. } | EventKind::MpiInit { .. } => self.mpi_calls,
        }
    }
}

/// The handle the simulators use to emit events.
///
/// Cheap to clone; all clones share the sequence counter, interners, filter,
/// and sink. Also counts recorded events so the overhead model can charge
/// per-event instrumentation cost.
#[derive(Clone)]
pub struct Collector {
    sink: Arc<dyn TraceSink>,
    seq: Arc<AtomicU64>,
    recorded: Arc<AtomicU64>,
    filter: EventFilter,
    locks: Interner,
    vars: Interner,
}

impl Collector {
    /// Create a collector feeding `sink`, admitting events per `filter`.
    pub fn new(sink: Arc<dyn TraceSink>, filter: EventFilter) -> Self {
        Collector {
            sink,
            seq: Arc::new(AtomicU64::new(0)),
            recorded: Arc::new(AtomicU64::new(0)),
            filter,
            locks: Interner::new(),
            vars: Interner::new(),
        }
    }

    /// A collector that records everything into a fresh [`MemorySink`];
    /// returns both.
    pub fn in_memory() -> (Collector, Arc<MemorySink>) {
        let sink = Arc::new(MemorySink::new());
        (
            Collector::new(sink.clone() as Arc<dyn TraceSink>, EventFilter::ALL),
            sink,
        )
    }

    /// A collector that drops everything.
    pub fn null() -> Collector {
        Collector::new(Arc::new(NullSink), EventFilter::NONE)
    }

    /// The active event-class filter.
    pub fn filter(&self) -> EventFilter {
        self.filter
    }

    /// Replace the filter (returns a new handle sharing all state).
    pub fn with_filter(&self, filter: EventFilter) -> Collector {
        Collector {
            filter,
            ..self.clone()
        }
    }

    /// Emit one event (if the filter admits it). Returns true if recorded.
    pub fn emit(
        &self,
        rank: Rank,
        tid: Tid,
        region: Option<RegionId>,
        time_ns: u64,
        loc: Option<SrcLoc>,
        kind: EventKind,
    ) -> bool {
        if !self.filter.admits(&kind) {
            return false;
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.recorded.fetch_add(1, Ordering::Relaxed);
        self.sink.record(Event {
            seq,
            rank,
            tid,
            region,
            time_ns,
            loc,
            kind,
        });
        true
    }

    /// Number of events actually recorded (post-filter).
    pub fn events_recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Intern a lock name.
    pub fn intern_lock(&self, name: &str) -> LockId {
        LockId(self.locks.intern(name))
    }

    /// Intern a shared-variable name.
    pub fn intern_var(&self, name: &str) -> VarId {
        VarId(self.vars.intern(name))
    }

    /// Resolve a lock id back to its name.
    pub fn resolve_lock(&self, id: LockId) -> Option<String> {
        self.locks.try_resolve(id.0)
    }

    /// Resolve a variable id back to its name.
    pub fn resolve_var(&self, id: VarId) -> Option<String> {
        self.vars.try_resolve(id.0)
    }
}

impl std::fmt::Debug for Collector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Collector")
            .field("filter", &self.filter)
            .field("recorded", &self.events_recorded())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{AccessKind, MemLoc};

    fn access_event_kind(c: &Collector) -> EventKind {
        EventKind::Access {
            loc: MemLoc::Var(c.intern_var("x")),
            kind: AccessKind::Write,
        }
    }

    #[test]
    fn memory_sink_roundtrip() {
        let (c, sink) = Collector::in_memory();
        let k = access_event_kind(&c);
        assert!(c.emit(Rank(0), Tid(0), None, 10, None, k.clone()));
        assert!(c.emit(Rank(0), Tid(1), None, 20, None, k));
        let trace = sink.drain();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.events()[0].seq, 0);
        assert_eq!(trace.events()[1].tid, Tid(1));
        assert_eq!(c.events_recorded(), 2);
    }

    #[test]
    fn filter_suppresses_classes() {
        let sink = Arc::new(MemorySink::new());
        let c = Collector::new(sink.clone(), EventFilter::MONITORED_AND_SYNC);
        let k = access_event_kind(&c);
        assert!(
            !c.emit(Rank(0), Tid(0), None, 0, None, k),
            "accesses filtered"
        );
        assert!(c.emit(
            Rank(0),
            Tid(0),
            None,
            0,
            None,
            EventKind::Acquire {
                lock: c.intern_lock("cs")
            }
        ));
        assert_eq!(sink.len(), 1);
        assert_eq!(c.events_recorded(), 1);
    }

    #[test]
    fn counting_sink_classifies() {
        let sink = Arc::new(CountingSink::new());
        let c = Collector::new(sink.clone(), EventFilter::ALL);
        c.emit(Rank(0), Tid(0), None, 0, None, access_event_kind(&c));
        c.emit(
            Rank(0),
            Tid(0),
            None,
            0,
            None,
            EventKind::Release {
                lock: c.intern_lock("l"),
            },
        );
        use crate::event::{MpiCallKind, MpiCallRecord};
        c.emit(
            Rank(0),
            Tid(0),
            None,
            0,
            None,
            EventKind::MpiCall {
                call: MpiCallRecord::of_kind(MpiCallKind::Barrier),
            },
        );
        assert_eq!(sink.accesses.load(Ordering::Relaxed), 1);
        assert_eq!(sink.sync.load(Ordering::Relaxed), 1);
        assert_eq!(sink.mpi.load(Ordering::Relaxed), 1);
        assert_eq!(sink.total(), 3);
    }

    #[test]
    fn interner_roundtrip_through_collector() {
        let c = Collector::null();
        let l = c.intern_lock("omp_critical_update");
        assert_eq!(c.resolve_lock(l).as_deref(), Some("omp_critical_update"));
        assert_eq!(c.resolve_lock(LockId(99)), None);
        let v = c.intern_var("rsd");
        assert_eq!(c.resolve_var(v).as_deref(), Some("rsd"));
    }

    #[test]
    fn null_collector_records_nothing() {
        let c = Collector::null();
        assert!(!c.emit(Rank(0), Tid(0), None, 0, None, access_event_kind(&c)));
        assert_eq!(c.events_recorded(), 0);
    }
}
